//! Labeled metrics: one [`Registry`] namespace per label set.
//!
//! A multi-tenant process wants the same metric name — `serve.epoch_us`,
//! `serve.evals` — recorded separately per tenant, per job, per stage.
//! [`ScopedRegistry`] is a concurrent map from a *label set* (sorted
//! `key=value` pairs) to an inner [`Registry`]; resolving a
//! [`Scope`] takes one lock, and recording through the scope then follows
//! the same lock-free-after-resolve discipline as the plain registry
//! (callers that cache `Arc<Counter>` / `Arc<Histogram>` handles record
//! with plain atomics).
//!
//! Snapshots are deterministic: scopes sort by label set, metrics within
//! each scope sort by name (the [`Registry`] guarantee), so serialising a
//! [`ScopedSnapshot`] twice from the same state yields identical bytes.
//! [`ScopedSnapshot::to_prometheus`] renders the whole thing in the
//! Prometheus text exposition format (counters as `counter`, histograms
//! as `summary` with p50/p90/p99 quantile lines), which is what the serve
//! crate's `/metrics` page returns.
//!
//! ```
//! let scoped = telemetry::ScopedRegistry::new();
//! let tenant_a = scoped.scope(&[("tenant", "a")]);
//! tenant_a.counter("serve.epochs").inc();
//! tenant_a.histogram("serve.epoch_us").record(1500);
//!
//! let snap = scoped.snapshot();
//! assert_eq!(snap.get(&[("tenant", "a")]).unwrap().counter("serve.epochs"), 1);
//! assert!(snap.to_prometheus().contains("serve_epochs{tenant=\"a\"} 1"));
//! ```

use crate::metrics::{Counter, Histogram, Registry, RegistrySnapshot};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// A sorted, owned `key=value` label set (the scope identity).
pub type LabelSet = Vec<(String, String)>;

fn label_set(labels: &[(&str, &str)]) -> LabelSet {
    let mut set: LabelSet = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    set.sort();
    set
}

/// A concurrent map from label set to an inner metrics [`Registry`].
#[derive(Debug, Default)]
pub struct ScopedRegistry {
    scopes: RwLock<HashMap<LabelSet, Arc<Registry>>>,
}

impl ScopedRegistry {
    /// New registry with no scopes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolve (creating on first use) the scope for `labels`. Label
    /// order does not matter — sets are sorted by key, so
    /// `[("a","1"),("b","2")]` and `[("b","2"),("a","1")]` name the same
    /// scope. An empty slice names the root (unlabeled) scope.
    pub fn scope(&self, labels: &[(&str, &str)]) -> Scope {
        let set = label_set(labels);
        if let Some(r) = self.scopes.read().unwrap().get(&set) {
            return Scope {
                labels: set,
                registry: Arc::clone(r),
            };
        }
        let registry = Arc::clone(self.scopes.write().unwrap().entry(set.clone()).or_default());
        Scope {
            labels: set,
            registry,
        }
    }

    /// Number of distinct label sets seen so far.
    pub fn len(&self) -> usize {
        self.scopes.read().unwrap().len()
    }

    /// True when no scope has been resolved yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot every scope, sorted by label set (and metrics sorted by
    /// name within each scope) — byte-deterministic to serialise.
    pub fn snapshot(&self) -> ScopedSnapshot {
        let mut scopes: Vec<(LabelSet, RegistrySnapshot)> = self
            .scopes
            .read()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        scopes.sort_by(|a, b| a.0.cmp(&b.0));
        ScopedSnapshot { scopes }
    }

    /// Drop every scope (fresh-run boundaries in long-lived processes).
    pub fn clear(&self) {
        self.scopes.write().unwrap().clear();
    }
}

/// A resolved (label set, registry) pair. Cheap to clone; metric
/// resolution inside the scope follows [`Registry`]'s
/// lock-free-after-resolve discipline.
#[derive(Debug, Clone)]
pub struct Scope {
    labels: LabelSet,
    registry: Arc<Registry>,
}

impl Scope {
    /// The sorted label set this scope records under.
    pub fn labels(&self) -> &[(String, String)] {
        &self.labels
    }

    /// Resolve the counter named `name` within this scope.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.registry.counter(name)
    }

    /// Resolve the histogram named `name` within this scope.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.registry.histogram(name)
    }

    /// The scope's underlying registry (for snapshotting one scope).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }
}

/// Point-in-time view of a whole [`ScopedRegistry`]: one
/// [`RegistrySnapshot`] per label set, sorted by label set.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ScopedSnapshot {
    /// `(labels, snapshot)` per scope, sorted by label set.
    pub scopes: Vec<(LabelSet, RegistrySnapshot)>,
}

/// Replace every character outside `[a-zA-Z0-9_:]` with `_` (metric
/// names like `serve.epoch_us` become `serve_epoch_us`).
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Escape a label value per the exposition format (`\`, `"`, newline).
fn prom_escape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render `{k="v",...}`; extra appends e.g. `quantile="0.5"`. Empty
/// label set with no extra renders as the empty string.
fn prom_labels(labels: &LabelSet, extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", prom_name(k), prom_escape(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

impl ScopedSnapshot {
    /// The snapshot recorded under exactly `labels`, if that scope exists.
    pub fn get(&self, labels: &[(&str, &str)]) -> Option<&RegistrySnapshot> {
        let set = label_set(labels);
        self.scopes.iter().find(|(k, _)| *k == set).map(|(_, v)| v)
    }

    /// Render in the Prometheus text exposition format, deterministically
    /// ordered: metric names sorted, label sets sorted within each metric.
    /// Counters render as `counter`; histograms as `summary` with
    /// p50/p90/p99 quantile series plus `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        // Group by metric name first so each # TYPE header appears once.
        let mut counter_names: Vec<&str> = Vec::new();
        let mut histogram_names: Vec<&str> = Vec::new();
        for (_, snap) in &self.scopes {
            for (name, _) in &snap.counters {
                if !counter_names.contains(&name.as_str()) {
                    counter_names.push(name);
                }
            }
            for (name, _) in &snap.histograms {
                if !histogram_names.contains(&name.as_str()) {
                    histogram_names.push(name);
                }
            }
        }
        counter_names.sort_unstable();
        histogram_names.sort_unstable();

        let mut out = String::new();
        for name in counter_names {
            let pname = prom_name(name);
            out.push_str(&format!("# TYPE {pname} counter\n"));
            for (labels, snap) in &self.scopes {
                for (n, v) in &snap.counters {
                    if n == name {
                        out.push_str(&format!("{pname}{} {v}\n", prom_labels(labels, None)));
                    }
                }
            }
        }
        for name in histogram_names {
            let pname = prom_name(name);
            out.push_str(&format!("# TYPE {pname} summary\n"));
            for (labels, snap) in &self.scopes {
                for (n, h) in &snap.histograms {
                    if n != name {
                        continue;
                    }
                    for (q, v) in [("0.5", h.p50), ("0.9", h.p90), ("0.99", h.p99)] {
                        out.push_str(&format!(
                            "{pname}{} {v}\n",
                            prom_labels(labels, Some(("quantile", q)))
                        ));
                    }
                    out.push_str(&format!(
                        "{pname}_sum{} {}\n",
                        prom_labels(labels, None),
                        h.sum
                    ));
                    out.push_str(&format!(
                        "{pname}_count{} {}\n",
                        prom_labels(labels, None),
                        h.count
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_order_is_irrelevant() {
        let s = ScopedRegistry::new();
        s.scope(&[("tenant", "a"), ("job", "1")])
            .counter("evals")
            .add(2);
        s.scope(&[("job", "1"), ("tenant", "a")])
            .counter("evals")
            .add(3);
        assert_eq!(s.len(), 1, "one scope regardless of label order");
        let snap = s.snapshot();
        assert_eq!(
            snap.get(&[("tenant", "a"), ("job", "1")])
                .unwrap()
                .counter("evals"),
            5
        );
    }

    #[test]
    fn scopes_are_isolated() {
        let s = ScopedRegistry::new();
        s.scope(&[("tenant", "a")]).counter("x").inc();
        s.scope(&[("tenant", "b")]).counter("x").add(7);
        s.scope(&[]).counter("x").add(100);
        let snap = s.snapshot();
        assert_eq!(snap.get(&[("tenant", "a")]).unwrap().counter("x"), 1);
        assert_eq!(snap.get(&[("tenant", "b")]).unwrap().counter("x"), 7);
        assert_eq!(snap.get(&[]).unwrap().counter("x"), 100);
        assert!(snap.get(&[("tenant", "zzz")]).is_none());
    }

    #[test]
    fn snapshot_is_deterministically_ordered_and_serialised() {
        // Populate two registries in opposite orders; their snapshots
        // must serialise to identical bytes.
        let mk = |reverse: bool| {
            let s = ScopedRegistry::new();
            let scopes: Vec<Vec<(&str, &str)>> = vec![
                vec![("tenant", "a")],
                vec![("tenant", "b")],
                vec![("job", "1"), ("tenant", "a")],
            ];
            let iter: Vec<_> = if reverse {
                scopes.iter().rev().collect()
            } else {
                scopes.iter().collect()
            };
            for labels in iter {
                let scope = s.scope(labels);
                for name in if reverse {
                    ["z", "m", "a"]
                } else {
                    ["a", "m", "z"]
                } {
                    scope.counter(name).add(1);
                    scope.histogram(&format!("h.{name}")).record(3);
                }
            }
            serde_json::to_string(&s.snapshot()).unwrap()
        };
        assert_eq!(mk(false), mk(true));
    }

    #[test]
    fn prometheus_rendering_is_wellformed() {
        let s = ScopedRegistry::new();
        let a = s.scope(&[("tenant", "a")]);
        a.counter("serve.epochs").add(3);
        a.histogram("serve.epoch_us").record(100);
        a.histogram("serve.epoch_us").record(200);
        s.scope(&[]).counter("queue.depth").add(2);

        let text = s.snapshot().to_prometheus();
        assert!(text.contains("# TYPE serve_epochs counter\n"));
        assert!(text.contains("serve_epochs{tenant=\"a\"} 3\n"));
        assert!(text.contains("# TYPE serve_epoch_us summary\n"));
        assert!(text.contains("serve_epoch_us{tenant=\"a\",quantile=\"0.5\"}"));
        assert!(text.contains("serve_epoch_us_sum{tenant=\"a\"} 300\n"));
        assert!(text.contains("serve_epoch_us_count{tenant=\"a\"} 2\n"));
        // Root-scope metrics render without braces.
        assert!(text.contains("queue_depth 2\n"));
        // Dots never leak into metric names.
        assert!(!text.contains("serve.epochs"));
    }

    #[test]
    fn prometheus_escapes_label_values() {
        let s = ScopedRegistry::new();
        s.scope(&[("tenant", "a\"b\\c")]).counter("x").inc();
        let text = s.snapshot().to_prometheus();
        assert!(text.contains("x{tenant=\"a\\\"b\\\\c\"} 1\n"));
    }

    #[test]
    fn clear_empties_all_scopes() {
        let s = ScopedRegistry::new();
        s.scope(&[("t", "a")]).counter("x").inc();
        s.clear();
        assert!(s.is_empty());
        assert!(s.snapshot().scopes.is_empty());
    }

    #[test]
    fn concurrent_scope_resolution_accumulates_exactly() {
        let s = Arc::new(ScopedRegistry::new());
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    let tenant = if i % 2 == 0 { "even" } else { "odd" };
                    for _ in 0..1000 {
                        s.scope(&[("tenant", tenant)]).counter("n").inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = s.snapshot();
        assert_eq!(snap.get(&[("tenant", "even")]).unwrap().counter("n"), 4000);
        assert_eq!(snap.get(&[("tenant", "odd")]).unwrap().counter("n"), 4000);
    }
}
