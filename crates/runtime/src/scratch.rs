//! Pooled `f64` scratch buffers for chunk-at-a-time pipelines.
//!
//! Chunked execution decodes compressed chunks into transient `f64`
//! buffers at high frequency (one decode per chunk visit). Allocating a
//! fresh `Vec` per decode would put the allocator on the hot path, so this
//! module keeps a small process-wide pool of recycled buffers: take one
//! with [`scratch_f64`], use it as a plain `Vec<f64>`, and it returns to
//! the pool on drop (cleared, capacity kept).
//!
//! The pool is bounded ([`MAX_POOLED`] buffers, [`MAX_POOLED_CAP`] floats
//! each) so pathological peaks don't pin memory forever. Telemetry:
//! `scratch.hits` / `scratch.misses` count pool reuse.

use std::ops::{Deref, DerefMut};
use std::sync::Mutex;

/// Maximum buffers the pool retains.
pub const MAX_POOLED: usize = 64;
/// Buffers with more capacity than this many floats are dropped rather
/// than pooled (1M floats = 8 MiB).
pub const MAX_POOLED_CAP: usize = 1 << 20;

static POOL: Mutex<Vec<Vec<f64>>> = Mutex::new(Vec::new());

/// A pooled `f64` buffer; derefs to `Vec<f64>` and returns to the pool on
/// drop.
#[derive(Debug, Default)]
pub struct ScratchF64 {
    buf: Vec<f64>,
}

impl ScratchF64 {
    /// Consume the guard, keeping the buffer (it will not be pooled).
    pub fn into_inner(mut self) -> Vec<f64> {
        std::mem::take(&mut self.buf)
    }
}

impl Deref for ScratchF64 {
    type Target = Vec<f64>;
    fn deref(&self) -> &Vec<f64> {
        &self.buf
    }
}

impl DerefMut for ScratchF64 {
    fn deref_mut(&mut self) -> &mut Vec<f64> {
        &mut self.buf
    }
}

impl Drop for ScratchF64 {
    fn drop(&mut self) {
        if self.buf.capacity() == 0 || self.buf.capacity() > MAX_POOLED_CAP {
            return;
        }
        let mut buf = std::mem::take(&mut self.buf);
        buf.clear();
        let mut pool = POOL.lock().expect("scratch pool lock");
        if pool.len() < MAX_POOLED {
            pool.push(buf);
        }
    }
}

/// Take a cleared scratch buffer from the pool (or a fresh one on miss).
pub fn scratch_f64() -> ScratchF64 {
    let buf = POOL.lock().expect("scratch pool lock").pop();
    match buf {
        Some(buf) => {
            telemetry::count("scratch.hits", 1);
            ScratchF64 { buf }
        }
        None => {
            telemetry::count("scratch.misses", 1);
            ScratchF64 { buf: Vec::new() }
        }
    }
}

/// Take a scratch buffer with at least `cap` floats of capacity.
pub fn scratch_f64_with_capacity(cap: usize) -> ScratchF64 {
    let mut s = scratch_f64();
    s.reserve(cap);
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_recycle_through_the_pool() {
        let mut a = scratch_f64_with_capacity(128);
        a.extend_from_slice(&[1.0, 2.0, 3.0]);
        let ptr = a.as_ptr();
        let cap = a.capacity();
        drop(a);
        // Drain until we find the recycled buffer (other tests share the
        // pool); it comes back cleared with capacity intact.
        let mut found = false;
        let mut held = Vec::new();
        for _ in 0..MAX_POOLED {
            let b = scratch_f64();
            if b.capacity() == cap && b.as_ptr() == ptr {
                assert!(b.is_empty());
                found = true;
                break;
            }
            held.push(b);
        }
        assert!(found, "recycled buffer should come back from the pool");
    }

    #[test]
    fn oversized_buffers_are_not_pooled() {
        let mut a = scratch_f64();
        a.reserve(MAX_POOLED_CAP + 1);
        let cap = a.capacity();
        drop(a);
        let pool = POOL.lock().expect("scratch pool lock");
        assert!(pool
            .iter()
            .all(|b| b.capacity() != cap || cap <= MAX_POOLED_CAP));
    }

    #[test]
    fn into_inner_detaches_from_the_pool() {
        let mut a = scratch_f64();
        a.push(9.0);
        let v = a.into_inner();
        assert_eq!(v, vec![9.0]);
    }
}
