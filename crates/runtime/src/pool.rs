//! Work-stealing thread pool with bounded queues, per-task deadlines,
//! and cooperative cancellation.
//!
//! Design constraints, in priority order:
//!
//! 1. **Determinism** — [`WorkerPool::map`] returns results in submission
//!    order and each task's [`TaskCtx::seed`] depends only on the task
//!    index, so outputs are bit-identical under any thread count.
//! 2. **No deadlocks under nesting** — worker threads are scoped to each
//!    `map` call and drawn from a global budget; when the budget is
//!    exhausted (e.g. an inner `map` inside an outer task) the caller
//!    simply runs its items inline.
//! 3. **Bounded memory** — items are distributed into per-worker deques
//!    with a capacity bound; overflow is executed inline by the caller
//!    (backpressure) instead of queueing without limit.
//!
//! Cancellation and deadlines are *cooperative*: `map` always produces
//! one output per item, and tasks observe [`TaskCtx::should_stop`] to
//! short-circuit their own work (returning a cheap/partial output). This
//! keeps the result shape independent of timing, which the determinism
//! guarantee requires.

use crate::seed::derive_seed;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Stream tag for task seeds (see [`derive_seed`]).
const STREAM_TASK: u64 = 0x7461_736b; // "task"

/// Maximum worker threads per process; 0 = not yet initialised.
static GLOBAL_MAX_THREADS: AtomicUsize = AtomicUsize::new(0);
/// Extra (non-caller) worker threads currently running across all pools.
static ACTIVE_EXTRA: AtomicUsize = AtomicUsize::new(0);

fn detect_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Set the process-wide worker-thread ceiling. `0` resets to the
/// machine's available parallelism.
pub fn set_global_threads(n: usize) {
    let v = if n == 0 { detect_threads() } else { n };
    GLOBAL_MAX_THREADS.store(v, Ordering::SeqCst);
}

/// The process-wide worker-thread ceiling.
pub fn global_threads() -> usize {
    match GLOBAL_MAX_THREADS.load(Ordering::SeqCst) {
        0 => detect_threads(),
        n => n,
    }
}

/// Claim up to `want` extra threads from the global budget; returns the
/// number granted. Pair with [`release_extra`].
fn acquire_extra(want: usize) -> usize {
    let limit = global_threads().saturating_sub(1);
    loop {
        let cur = ACTIVE_EXTRA.load(Ordering::SeqCst);
        let grant = want.min(limit.saturating_sub(cur));
        if grant == 0 {
            return 0;
        }
        if ACTIVE_EXTRA
            .compare_exchange(cur, cur + grant, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            return grant;
        }
    }
}

fn release_extra(n: usize) {
    ACTIVE_EXTRA.fetch_sub(n, Ordering::SeqCst);
}

/// Point-in-time view of the global thread budget, for introspection
/// surfaces (the serve crate's `/status` page).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Process-wide worker-thread ceiling ([`global_threads`]).
    pub threads: usize,
    /// Extra (non-caller) worker threads currently running across all
    /// pools; transient by nature.
    pub active_extra: usize,
}

/// Snapshot the global thread budget.
pub fn pool_stats() -> PoolStats {
    PoolStats {
        threads: global_threads(),
        active_extra: ACTIVE_EXTRA.load(Ordering::SeqCst),
    }
}

/// Run one task under a `pool.task` span, recording its run time. The
/// span parents under whatever is current on the executing thread (the
/// `pool.map` span inline, the re-established submitter span on workers).
fn run_task<T, U, F>(f: &F, ctx: &TaskCtx, item: T) -> U
where
    F: Fn(&TaskCtx, T) -> U,
{
    if !telemetry::enabled() {
        return f(ctx, item);
    }
    let _task = telemetry::span("pool.task");
    let start = Instant::now();
    let out = f(ctx, item);
    telemetry::record("pool.run_us", start.elapsed().as_micros() as u64);
    out
}

/// Shared flag for cooperative cancellation.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation; tasks observe it via [`TaskCtx::should_stop`].
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// Per-task execution context handed to every `map` closure.
#[derive(Clone, Debug)]
pub struct TaskCtx {
    /// Submission index of this task.
    pub index: usize,
    /// Deterministic task seed: a pure function of (pool seed, index).
    pub seed: u64,
    cancel: CancelToken,
    deadline: Option<Instant>,
}

impl TaskCtx {
    pub fn is_cancelled(&self) -> bool {
        self.cancel.is_cancelled()
    }

    pub fn deadline_exceeded(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// True when the task should short-circuit (cancelled or past its
    /// deadline). Long-running tasks are expected to poll this.
    pub fn should_stop(&self) -> bool {
        self.is_cancelled() || self.deadline_exceeded()
    }
}

/// A configured handle for running order-preserving parallel maps.
///
/// The pool itself is cheap: threads are scoped to each [`map`] call, so
/// holding a `WorkerPool` costs nothing between calls.
///
/// [`map`]: WorkerPool::map
#[derive(Clone, Debug)]
pub struct WorkerPool {
    max_threads: usize,
    queue_capacity: usize,
    deadline: Option<Duration>,
    cancel: CancelToken,
    root_seed: u64,
}

impl Default for WorkerPool {
    fn default() -> Self {
        WorkerPool {
            max_threads: 0, // defer to the global ceiling
            queue_capacity: 4096,
            deadline: None,
            cancel: CancelToken::new(),
            root_seed: 0,
        }
    }
}

impl WorkerPool {
    pub fn new() -> Self {
        Self::default()
    }

    /// Cap this pool's threads (`0` = global ceiling).
    pub fn with_threads(mut self, n: usize) -> Self {
        self.max_threads = n;
        self
    }

    /// Bound each worker's queue; overflow runs inline on the caller.
    pub fn with_queue_capacity(mut self, cap: usize) -> Self {
        self.queue_capacity = cap.max(1);
        self
    }

    /// Give every task of every subsequent `map` this much wall-clock
    /// time before `ctx.should_stop()` turns true.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attach an external cancellation token.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Root seed from which per-task seeds are derived.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.root_seed = seed;
        self
    }

    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    fn task_ctx(&self, index: usize, deadline: Option<Instant>) -> TaskCtx {
        TaskCtx {
            index,
            seed: derive_seed(self.root_seed, STREAM_TASK, index as u64),
            cancel: self.cancel.clone(),
            deadline,
        }
    }

    /// Apply `f` to every item, in parallel when the global thread budget
    /// allows, returning outputs in submission order.
    ///
    /// Panics in `f` are propagated to the caller; remaining queued items
    /// are abandoned (in-flight ones finish their current `f` call).
    pub fn map<T, U, F>(&self, items: Vec<T>, f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(&TaskCtx, T) -> U + Sync,
    {
        let n = items.len();
        let deadline = self.deadline.map(|d| Instant::now() + d);
        if n == 0 {
            return Vec::new();
        }
        let mut map_span = telemetry::span("pool.map");
        map_span.field("items", n as f64);

        let want = match self.max_threads {
            0 => global_threads(),
            n => n,
        };
        let extra = if want <= 1 || n <= 1 {
            0
        } else {
            acquire_extra(want.min(n).saturating_sub(1))
        };
        map_span.field("workers", (extra + 1) as f64);

        if extra == 0 {
            if want > 1 && n > 1 {
                // Parallelism was wanted but the global budget is spent
                // (e.g. a feature-parallel histogram batch nested inside a
                // per-tree forest task) — run inline on the caller.
                telemetry::count("pool.inline_fallback", 1);
            }
            return items
                .into_iter()
                .enumerate()
                .map(|(i, item)| run_task(&f, &self.task_ctx(i, deadline), item))
                .collect();
        }

        let result = self.map_parallel(items, &f, extra, deadline, map_span.id());
        release_extra(extra);
        match result {
            Ok(out) => out,
            Err(payload) => panic::resume_unwind(payload),
        }
    }

    fn map_parallel<T, U, F>(
        &self,
        items: Vec<T>,
        f: &F,
        extra: usize,
        deadline: Option<Instant>,
        parent: telemetry::SpanId,
    ) -> Result<Vec<U>, Box<dyn std::any::Any + Send>>
    where
        T: Send,
        U: Send,
        F: Fn(&TaskCtx, T) -> U + Sync,
    {
        let n = items.len();
        let n_workers = extra + 1; // caller participates
        type Job<T> = (usize, T, Option<Instant>);
        let queues: Vec<Mutex<VecDeque<Job<T>>>> = (0..n_workers)
            .map(|_| Mutex::new(VecDeque::new()))
            .collect();
        let poisoned = AtomicBool::new(false);
        let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        let mut results: Vec<Option<U>> = Vec::with_capacity(n);
        results.resize_with(n, || None);
        let mut inline: Vec<(usize, U)> = Vec::new();

        // Distribute round-robin under the per-queue bound; overflow runs
        // inline right here (backpressure on the submitting thread).
        for (i, item) in items.into_iter().enumerate() {
            let mut item = Some(item);
            let enqueued_at = telemetry::enabled().then(Instant::now);
            for off in 0..n_workers {
                let mut q = queues[(i + off) % n_workers].lock().unwrap();
                if q.len() < self.queue_capacity {
                    q.push_back((i, item.take().expect("item not yet placed"), enqueued_at));
                    break;
                }
            }
            if let Some(item) = item.take() {
                telemetry::count("pool.inline_overflow", 1);
                let ctx = self.task_ctx(i, deadline);
                inline.push((i, run_task(f, &ctx, item)));
            }
        }

        let run_worker = |me: usize| -> Vec<(usize, U)> {
            // Re-establish the submitting call's span on this thread so
            // task spans parent across the pool boundary.
            let _parent = telemetry::parent_scope(parent);
            let worker_start = telemetry::enabled().then(Instant::now);
            let mut busy_us = 0u64;
            let mut out = Vec::new();
            loop {
                if poisoned.load(Ordering::SeqCst) {
                    break;
                }
                // Own queue first (front), then steal (back) from others.
                let job = {
                    let mut job = queues[me].lock().unwrap().pop_front();
                    if job.is_none() {
                        for off in 1..n_workers {
                            let victim = (me + off) % n_workers;
                            job = queues[victim].lock().unwrap().pop_back();
                            if job.is_some() {
                                break;
                            }
                        }
                    }
                    job
                };
                let Some((i, item, enqueued_at)) = job else {
                    break;
                };
                if let Some(enqueued_at) = enqueued_at {
                    telemetry::record("pool.queue_us", enqueued_at.elapsed().as_micros() as u64);
                }
                let task_start = worker_start.map(|_| Instant::now());
                let ctx = self.task_ctx(i, deadline);
                match panic::catch_unwind(AssertUnwindSafe(|| run_task(f, &ctx, item))) {
                    Ok(value) => {
                        if let Some(task_start) = task_start {
                            busy_us += task_start.elapsed().as_micros() as u64;
                        }
                        out.push((i, value));
                    }
                    Err(payload) => {
                        poisoned.store(true, Ordering::SeqCst);
                        self.cancel.cancel();
                        *panic_payload.lock().unwrap() = Some(payload);
                        break;
                    }
                }
            }
            if let Some(worker_start) = worker_start {
                let total_us = worker_start.elapsed().as_micros() as u64;
                telemetry::record("pool.idle_us", total_us.saturating_sub(busy_us));
            }
            out
        };

        let mut worker_outputs: Vec<Vec<(usize, U)>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (1..n_workers)
                .map(|w| scope.spawn(move || run_worker(w)))
                .collect();
            worker_outputs.push(run_worker(0));
            for h in handles {
                // A worker can only panic via the propagated payload path
                // above; join errors should be impossible, but fold them
                // into the same poison channel just in case.
                match h.join() {
                    Ok(out) => worker_outputs.push(out),
                    Err(payload) => {
                        poisoned.store(true, Ordering::SeqCst);
                        *panic_payload.lock().unwrap() = Some(payload);
                    }
                }
            }
        });

        if let Some(payload) = panic_payload.lock().unwrap().take() {
            return Err(payload);
        }
        for (i, value) in inline
            .into_iter()
            .chain(worker_outputs.into_iter().flatten())
        {
            results[i] = Some(value);
        }
        Ok(results
            .into_iter()
            .map(|r| r.expect("every task produced a result"))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order_and_covers_all_items() {
        set_global_threads(4);
        let pool = WorkerPool::new();
        let out = pool.map((0..100).collect(), |_ctx, x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_single_threaded_bit_for_bit() {
        set_global_threads(4);
        let work = |ctx: &TaskCtx, x: u64| -> u64 {
            // Depends on the task seed, so scheduling-dependent seeds
            // would show up as a mismatch.
            ctx.seed.wrapping_mul(x + 1)
        };
        let seq = WorkerPool::new().with_seed(9).with_threads(1);
        let par = WorkerPool::new().with_seed(9).with_threads(4);
        let items: Vec<u64> = (0..257).collect();
        assert_eq!(seq.map(items.clone(), work), par.map(items, work));
    }

    #[test]
    fn task_seeds_are_stable_and_distinct() {
        let pool = WorkerPool::new().with_seed(5).with_threads(1);
        let seeds = pool.map(vec![(); 64], |ctx, ()| ctx.seed);
        let again = pool.map(vec![(); 64], |ctx, ()| ctx.seed);
        assert_eq!(seeds, again);
        let unique: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(unique.len(), seeds.len());
    }

    #[test]
    fn nested_maps_do_not_deadlock() {
        set_global_threads(4);
        let outer = WorkerPool::new();
        let out = outer.map((0..8).collect(), |_ctx, x: u64| {
            let inner = WorkerPool::new();
            inner
                .map((0..8).collect(), move |_c, y: u64| x * 10 + y)
                .into_iter()
                .sum::<u64>()
        });
        let expected: Vec<u64> = (0..8).map(|x| (0..8).map(|y| x * 10 + y).sum()).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn tiny_queue_capacity_still_completes() {
        set_global_threads(4);
        let pool = WorkerPool::new().with_queue_capacity(1);
        let out = pool.map((0..50).collect(), |_ctx, x: i32| x + 1);
        assert_eq!(out, (1..=50).collect::<Vec<_>>());
    }

    #[test]
    fn panic_in_task_propagates() {
        set_global_threads(4);
        let pool = WorkerPool::new();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map((0..16).collect(), |_ctx, x: i32| {
                if x == 7 {
                    panic!("boom at {x}");
                }
                x
            })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn cancellation_is_visible_to_tasks() {
        let token = CancelToken::new();
        let pool = WorkerPool::new()
            .with_threads(1)
            .with_cancel_token(token.clone());
        token.cancel();
        let out = pool.map(vec![(); 4], |ctx, ()| ctx.should_stop());
        assert_eq!(out, vec![true; 4]);
    }

    #[test]
    fn deadline_expires() {
        let pool = WorkerPool::new()
            .with_threads(1)
            .with_deadline(Duration::from_millis(1));
        let out = pool.map(vec![(); 2], |ctx, ()| {
            std::thread::sleep(Duration::from_millis(5));
            ctx.deadline_exceeded()
        });
        // The first task sleeps past the shared deadline; the second task
        // then observes it exceeded before doing its work.
        assert!(out[1]);
    }

    #[test]
    fn runs_concurrently_when_budget_allows() {
        set_global_threads(4);
        // Retry: another test's map could transiently hold the budget.
        for _ in 0..10 {
            let in_flight = AtomicUsize::new(0);
            let peak = AtomicUsize::new(0);
            let pool = WorkerPool::new().with_threads(2);
            pool.map(vec![(); 2], |_ctx, ()| {
                let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(30));
                in_flight.fetch_sub(1, Ordering::SeqCst);
            });
            if peak.load(Ordering::SeqCst) == 2 {
                return;
            }
        }
        panic!("two-task map never overlapped despite a thread budget of 4");
    }
}
