//! Deterministic round-robin fair scheduling over a set of keys.
//!
//! A multi-tenant server interleaves epoch-granular work slices from many
//! jobs onto one compute substrate (the shared [`crate::WorkerPool`] and
//! caches). The scheduling policy lives here, separated from the job
//! bookkeeping, so it can be tested exhaustively on its own: a
//! [`RoundRobin`] hands out each admitted key in strict rotation —
//! admission order first, then cyclically — giving every active job the
//! same share of slices regardless of when it joined or how long its
//! slices take. The rotation is a pure function of the admit/remove call
//! sequence (no clocks, no randomness), which keeps multi-tenant runs
//! reproducible end to end.

use std::collections::VecDeque;

/// A strict-rotation fair scheduler over admitted keys.
///
/// `next()` yields admitted keys in cyclic order; `remove()` drops a key
/// out of the rotation without disturbing the relative order of the
/// others. All operations are O(n) worst case in the number of admitted
/// keys, which is tiny (active jobs) by construction.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin<K> {
    ring: VecDeque<K>,
}

impl<K: Eq + Clone> RoundRobin<K> {
    /// Empty rotation.
    pub fn new() -> RoundRobin<K> {
        RoundRobin {
            ring: VecDeque::new(),
        }
    }

    /// Add `key` at the back of the rotation. A key already admitted is
    /// not duplicated (idempotent admit).
    pub fn admit(&mut self, key: K) {
        if !self.ring.contains(&key) {
            self.ring.push_back(key);
        }
    }

    /// The next key in the rotation (the key moves to the back), or
    /// `None` when the rotation is empty.
    pub fn pick(&mut self) -> Option<K> {
        let key = self.ring.pop_front()?;
        self.ring.push_back(key.clone());
        Some(key)
    }

    /// Drop `key` from the rotation; returns whether it was present.
    pub fn remove(&mut self, key: &K) -> bool {
        match self.ring.iter().position(|k| k == key) {
            Some(i) => {
                self.ring.remove(i);
                true
            }
            None => false,
        }
    }

    /// Whether `key` is currently in the rotation.
    pub fn contains(&self, key: &K) -> bool {
        self.ring.contains(key)
    }

    /// Number of keys in the rotation.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when no keys are admitted.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn rotation_is_cyclic_in_admission_order() {
        let mut rr = RoundRobin::new();
        rr.admit(1);
        rr.admit(2);
        rr.admit(3);
        let picks: Vec<i32> = (0..7).map(|_| rr.pick().unwrap()).collect();
        assert_eq!(picks, vec![1, 2, 3, 1, 2, 3, 1]);
    }

    #[test]
    fn shares_are_equal_over_full_cycles() {
        let mut rr = RoundRobin::new();
        for k in 0..4 {
            rr.admit(k);
        }
        let mut counts: HashMap<i32, usize> = HashMap::new();
        for _ in 0..400 {
            *counts.entry(rr.pick().unwrap()).or_default() += 1;
        }
        for k in 0..4 {
            assert_eq!(counts[&k], 100, "key {k} did not get an equal share");
        }
    }

    #[test]
    fn late_admission_joins_at_the_back_without_starving_anyone() {
        let mut rr = RoundRobin::new();
        rr.admit("a");
        rr.admit("b");
        assert_eq!(rr.pick(), Some("a"));
        rr.admit("c");
        // The rotation continues where it was; the newcomer joins the
        // cycle at the back and gets a full share from then on.
        assert_eq!(rr.pick(), Some("b"));
        assert_eq!(rr.pick(), Some("a"));
        assert_eq!(rr.pick(), Some("c"));
        assert_eq!(rr.pick(), Some("b"));
        assert_eq!(rr.pick(), Some("a"));
        assert_eq!(rr.pick(), Some("c"));
    }

    #[test]
    fn remove_preserves_relative_order_of_the_rest() {
        let mut rr = RoundRobin::new();
        for k in ["a", "b", "c", "d"] {
            rr.admit(k);
        }
        assert!(rr.remove(&"b"));
        assert!(!rr.remove(&"b"), "double remove reports absence");
        let picks: Vec<&str> = (0..6).map(|_| rr.pick().unwrap()).collect();
        assert_eq!(picks, vec!["a", "c", "d", "a", "c", "d"]);
        assert_eq!(rr.len(), 3);
    }

    #[test]
    fn pause_mid_rotation_keeps_the_rest_fair_and_resume_rejoins_cleanly() {
        // A tenant pausing a job maps to remove(); resuming maps to
        // admit(). Pause "b" mid-rotation — after "a" was picked but
        // before "b"'s turn came up — and the survivors must keep strict
        // equal shares with no skipped or doubled turn at the seam.
        let mut rr = RoundRobin::new();
        for k in ["a", "b", "c"] {
            rr.admit(k);
        }
        assert_eq!(rr.pick(), Some("a"));
        assert!(rr.remove(&"b"), "pause drops the job from the rotation");
        let picks: Vec<&str> = (0..6).map(|_| rr.pick().unwrap()).collect();
        assert_eq!(picks, vec!["c", "a", "c", "a", "c", "a"]);

        // While paused the job is simply absent — picks never yield it
        // and its share flows to the active tenants (3 slices each over
        // 6 picks above, not 2 of 9).
        assert!(!rr.contains(&"b"));

        // Resume mid-rotation: the job rejoins at the back, gets no
        // catch-up burst for the slices it missed, and from the next
        // full cycle on every tenant is back to exactly 1 pick per
        // cycle.
        rr.admit("b");
        let resumed: Vec<&str> = (0..9).map(|_| rr.pick().unwrap()).collect();
        assert_eq!(
            resumed,
            vec!["c", "a", "b", "c", "a", "b", "c", "a", "b"],
            "resumed job takes one slot per cycle, no more"
        );
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for k in resumed {
            *counts.entry(k).or_default() += 1;
        }
        assert!(counts.values().all(|&n| n == 3), "equal shares: {counts:?}");
    }

    #[test]
    fn admit_is_idempotent() {
        let mut rr = RoundRobin::new();
        rr.admit(7);
        rr.admit(7);
        assert_eq!(rr.len(), 1);
        assert_eq!(rr.pick(), Some(7));
        assert_eq!(rr.pick(), Some(7));
    }

    #[test]
    fn empty_rotation_yields_none() {
        let mut rr: RoundRobin<u32> = RoundRobin::new();
        assert!(rr.is_empty());
        assert_eq!(rr.pick(), None);
        assert!(!rr.remove(&1));
    }

    #[test]
    fn rotation_is_a_pure_function_of_the_call_sequence() {
        // Two schedulers driven by the same call sequence agree forever.
        let drive = |rr: &mut RoundRobin<u8>| -> Vec<Option<u8>> {
            let mut out = Vec::new();
            rr.admit(1);
            rr.admit(2);
            out.push(rr.pick());
            rr.admit(3);
            out.push(rr.pick());
            rr.remove(&1);
            out.push(rr.pick());
            out.push(rr.pick());
            out.push(rr.pick());
            out
        };
        let mut a = RoundRobin::new();
        let mut b = RoundRobin::new();
        assert_eq!(drive(&mut a), drive(&mut b));
    }
}
