//! Process-global distributed-search counters.
//!
//! The `dist` crate's coordinator updates these atomics as it dispatches
//! shards, receives results, and merges cache entries; they live here (a
//! dependency leaf both `dist` and `serve` already sit on) so the serving
//! layer's `/status` and `/metrics` pages can surface cluster activity
//! without depending on the coordinator itself — the same pattern as
//! `tabular::global_frame_stats` for out-of-core residency.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Snapshot of distributed-search activity since process start, returned
/// by [`global_dist_stats`]. Gauges (`workers_live`) reflect the current
/// state; all other fields are cumulative.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistStats {
    /// Worker connections currently registered with a coordinator.
    pub workers_live: u64,
    /// Work shards handed to a worker (retries dispatch again).
    pub shards_dispatched: u64,
    /// Work shards whose results were received and merged.
    pub shards_completed: u64,
    /// Work shards re-dispatched after a worker died or misbehaved.
    pub shards_retried: u64,
    /// Protocol bytes written to transports (frames out).
    pub bytes_sent: u64,
    /// Protocol bytes read from transports (frames in).
    pub bytes_received: u64,
    /// Cache entries received from workers and merged locally.
    pub entries_merged: u64,
    /// Of the entries merged, how many were new to the local caches
    /// (the rest were idempotent replays).
    pub entries_fresh: u64,
    /// Microseconds of coordinator-side wire + merge overhead: dispatch
    /// wave wall-clock beyond the critical-path worker's compute time
    /// (serialization, transport, scheduling) plus snapshot merge time —
    /// the overhead a distributed run pays over solo search.
    pub wire_us: u64,
}

#[derive(Debug, Default)]
pub(crate) struct GlobalDist {
    pub(crate) workers_live: AtomicU64,
    pub(crate) shards_dispatched: AtomicU64,
    pub(crate) shards_completed: AtomicU64,
    pub(crate) shards_retried: AtomicU64,
    pub(crate) bytes_sent: AtomicU64,
    pub(crate) bytes_received: AtomicU64,
    pub(crate) entries_merged: AtomicU64,
    pub(crate) entries_fresh: AtomicU64,
    pub(crate) wire_us: AtomicU64,
}

static GLOBAL: GlobalDist = GlobalDist {
    workers_live: AtomicU64::new(0),
    shards_dispatched: AtomicU64::new(0),
    shards_completed: AtomicU64::new(0),
    shards_retried: AtomicU64::new(0),
    bytes_sent: AtomicU64::new(0),
    bytes_received: AtomicU64::new(0),
    entries_merged: AtomicU64::new(0),
    entries_fresh: AtomicU64::new(0),
    wire_us: AtomicU64::new(0),
};

/// Process-wide distributed-search counters (all zero when no coordinator
/// has run in this process).
pub fn global_dist_stats() -> DistStats {
    DistStats {
        workers_live: GLOBAL.workers_live.load(Ordering::Relaxed),
        shards_dispatched: GLOBAL.shards_dispatched.load(Ordering::Relaxed),
        shards_completed: GLOBAL.shards_completed.load(Ordering::Relaxed),
        shards_retried: GLOBAL.shards_retried.load(Ordering::Relaxed),
        bytes_sent: GLOBAL.bytes_sent.load(Ordering::Relaxed),
        bytes_received: GLOBAL.bytes_received.load(Ordering::Relaxed),
        entries_merged: GLOBAL.entries_merged.load(Ordering::Relaxed),
        entries_fresh: GLOBAL.entries_fresh.load(Ordering::Relaxed),
        wire_us: GLOBAL.wire_us.load(Ordering::Relaxed),
    }
}

/// Mutation surface for the coordinator/transport layer. Free functions
/// (not methods on a handle) so call sites stay one line and the counters
/// stay process-global across however many coordinators a test spawns.
pub mod dist_counters {
    use super::{Ordering, GLOBAL};

    /// A worker connection was registered.
    pub fn worker_up() {
        GLOBAL.workers_live.fetch_add(1, Ordering::Relaxed);
    }

    /// A worker connection was dropped (death or orderly shutdown).
    pub fn worker_down() {
        GLOBAL.workers_live.fetch_sub(1, Ordering::Relaxed);
    }

    /// `n` shards were handed to workers.
    pub fn dispatched(n: u64) {
        GLOBAL.shards_dispatched.fetch_add(n, Ordering::Relaxed);
    }

    /// `n` shard results were received and merged.
    pub fn completed(n: u64) {
        GLOBAL.shards_completed.fetch_add(n, Ordering::Relaxed);
    }

    /// `n` shards were re-dispatched after a worker failure.
    pub fn retried(n: u64) {
        GLOBAL.shards_retried.fetch_add(n, Ordering::Relaxed);
    }

    /// `n` protocol bytes were written to a transport.
    pub fn sent(n: u64) {
        GLOBAL.bytes_sent.fetch_add(n, Ordering::Relaxed);
    }

    /// `n` protocol bytes were read from a transport.
    pub fn received(n: u64) {
        GLOBAL.bytes_received.fetch_add(n, Ordering::Relaxed);
    }

    /// `total` cache entries arrived from a worker, `fresh` of them new.
    pub fn merged(total: u64, fresh: u64) {
        GLOBAL.entries_merged.fetch_add(total, Ordering::Relaxed);
        GLOBAL.entries_fresh.fetch_add(fresh, Ordering::Relaxed);
    }

    /// The coordinator spent `us` microseconds blocked on the wire.
    pub fn wire(us: u64) {
        GLOBAL.wire_us.fetch_add(us, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_into_the_snapshot() {
        let before = global_dist_stats();
        dist_counters::worker_up();
        dist_counters::dispatched(3);
        dist_counters::completed(2);
        dist_counters::retried(1);
        dist_counters::sent(100);
        dist_counters::received(250);
        dist_counters::merged(10, 4);
        dist_counters::wire(7);
        let after = global_dist_stats();
        assert_eq!(after.workers_live, before.workers_live + 1);
        assert_eq!(after.shards_dispatched, before.shards_dispatched + 3);
        assert_eq!(after.shards_completed, before.shards_completed + 2);
        assert_eq!(after.shards_retried, before.shards_retried + 1);
        assert_eq!(after.bytes_sent, before.bytes_sent + 100);
        assert_eq!(after.bytes_received, before.bytes_received + 250);
        assert_eq!(after.entries_merged, before.entries_merged + 10);
        assert_eq!(after.entries_fresh, before.entries_fresh + 4);
        assert_eq!(after.wire_us, before.wire_us + 7);
        dist_counters::worker_down();
        assert_eq!(global_dist_stats().workers_live, before.workers_live);
    }
}
