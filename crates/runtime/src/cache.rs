//! Concurrent, content-addressed evaluation cache.
//!
//! Maps a [`Fingerprint`] to a cached score (generic payload `V`) across
//! 16 independently locked shards, with a global capacity bound, an
//! approximate-LRU eviction policy (global logical clock, per-shard LRU
//! scan), and atomic hit/miss/insert/evict counters kept *per shard*
//! (surfaced raw via [`ScoreCache::shard_stats`], aggregated by
//! [`ScoreCache::stats`]) so contention and key-skew are observable.
//!
//! Capacity invariant: once every in-flight `insert` has returned, the
//! number of resident entries is at most `capacity`; while inserts are in
//! flight, residency can overshoot by at most the number of concurrently
//! inserting threads (each over-capacity insert pays one eviction before
//! returning). The victim is the globally least-recently-used entry,
//! located by scanning the shards one lock at a time (O(len), but
//! eviction only happens at capacity, where each resident entry already
//! amortises a full CV evaluation). Locks are only ever held one shard at
//! a time, so there is no lock-ordering hazard; concurrent touches
//! between the scan and the removal merely make the LRU choice
//! approximate.

use crate::fingerprint::Fingerprint;
use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

const N_SHARDS: usize = 16;

struct Entry<V> {
    value: V,
    last_used: u64,
}

/// One lock domain of the cache, with its own counters so per-shard
/// statistics cost no extra synchronisation on the lookup path.
struct Shard<V> {
    map: Mutex<HashMap<u128, Entry<V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    /// Evictions are charged to the shard the victim lived in.
    evictions: AtomicU64,
}

impl<V> Shard<V> {
    fn new() -> Self {
        Shard {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn stats(&self) -> ShardStats {
        ShardStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            len: self.map.lock().unwrap().len(),
        }
    }
}

/// Per-shard counter snapshot returned by [`ScoreCache::shard_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    pub hits: u64,
    pub misses: u64,
    pub inserts: u64,
    pub evictions: u64,
    /// Resident entries in this shard at snapshot time.
    pub len: usize,
}

/// Counter snapshot returned by [`ScoreCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub inserts: u64,
    pub evictions: u64,
    /// Resident entries at snapshot time.
    pub len: usize,
    pub capacity: usize,
}

impl CacheStats {
    /// Hit fraction of all lookups so far (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter deltas relative to an earlier snapshot.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            inserts: self.inserts - earlier.inserts,
            evictions: self.evictions - earlier.evictions,
            len: self.len,
            capacity: self.capacity,
        }
    }
}

/// Serde-serializable export of cache entries keyed by fingerprint,
/// produced by [`ScoreCache::snapshot`] / [`ScoreCache::snapshot_since`]
/// and replayed into another cache by [`ScoreCache::merge`].
///
/// Entries are sorted by fingerprint so the serialized form is
/// deterministic regardless of shard iteration order. On the wire each
/// entry is a `[hi, lo, value]` array: the 128-bit fingerprint travels as
/// two `u64` halves because JSON has no 128-bit integer.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheSnapshot<V> {
    /// `(fingerprint, value)` pairs in ascending fingerprint order.
    pub entries: Vec<(Fingerprint, V)>,
}

impl<V> CacheSnapshot<V> {
    /// Empty snapshot.
    pub fn empty() -> Self {
        CacheSnapshot {
            entries: Vec::new(),
        }
    }

    /// Number of exported entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing was exported.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl<V> Default for CacheSnapshot<V> {
    fn default() -> Self {
        CacheSnapshot::empty()
    }
}

impl<V: Serialize> Serialize for CacheSnapshot<V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.entries
                .iter()
                .map(|(fp, v)| {
                    Value::Array(vec![
                        ((fp.0 >> 64) as u64).to_value(),
                        (fp.0 as u64).to_value(),
                        v.to_value(),
                    ])
                })
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for CacheSnapshot<V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_array()
            .ok_or_else(|| DeError::new("expected array for CacheSnapshot"))?;
        let mut entries = Vec::with_capacity(items.len());
        for item in items {
            let parts = item
                .as_array()
                .ok_or_else(|| DeError::new("expected [hi, lo, value] entry"))?;
            if parts.len() != 3 {
                return Err(DeError::new("cache entry must be [hi, lo, value]"));
            }
            let hi = u64::from_value(&parts[0])?;
            let lo = u64::from_value(&parts[1])?;
            let fp = Fingerprint(((hi as u128) << 64) | lo as u128);
            entries.push((fp, V::from_value(&parts[2])?));
        }
        Ok(CacheSnapshot { entries })
    }
}

/// Sharded concurrent cache from [`Fingerprint`] to `V`.
pub struct ScoreCache<V> {
    shards: Vec<Shard<V>>,
    capacity: usize,
    /// Logical clock driving LRU ordering.
    tick: AtomicU64,
    /// Resident-entry counter (kept in sync with the shard maps).
    len: AtomicUsize,
}

impl<V: Clone> ScoreCache<V> {
    /// Create a cache bounded to `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        ScoreCache {
            shards: (0..N_SHARDS).map(|_| Shard::new()).collect(),
            capacity: capacity.max(1),
            tick: AtomicU64::new(0),
            len: AtomicUsize::new(0),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resident entries right now.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.map.lock().unwrap().len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard_of(&self, key: Fingerprint) -> usize {
        // High bits: FNV mixes the low bits last, the high bits are well
        // distributed for similar inputs either way.
        (key.0 >> 124) as usize % N_SHARDS
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Look up a cached value, refreshing its recency on hit.
    pub fn get(&self, key: Fingerprint) -> Option<V> {
        let tick = self.next_tick();
        let shard = &self.shards[self.shard_of(key)];
        let mut map = shard.map.lock().unwrap();
        match map.get_mut(&key.0) {
            Some(entry) => {
                entry.last_used = tick;
                shard.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.value.clone())
            }
            None => {
                shard.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert (or refresh) a value, evicting the approximate global LRU
    /// entry first if the cache is at capacity.
    pub fn insert(&self, key: Fingerprint, value: V) {
        let tick = self.next_tick();
        let idx = self.shard_of(key);
        {
            let mut map = self.shards[idx].map.lock().unwrap();
            if let Some(entry) = map.get_mut(&key.0) {
                entry.value = value;
                entry.last_used = tick;
                return;
            }
        }
        // Reserve a slot, insert, then pay any eviction debt. Paying after
        // the insert means a concurrent debtor always has a victim to find,
        // at the cost of letting residency overshoot `capacity` by at most
        // the number of concurrently inserting threads; the bound is exact
        // again as soon as every in-flight insert returns.
        let need_evict = self.len.fetch_add(1, Ordering::AcqRel) >= self.capacity;
        let shard = &self.shards[idx];
        let mut map = shard.map.lock().unwrap();
        if let Some(entry) = map.get_mut(&key.0) {
            // A concurrent inserter beat us to this key: refresh in place
            // and release the slot we reserved.
            entry.value = value;
            entry.last_used = tick;
            drop(map);
            self.len.fetch_sub(1, Ordering::AcqRel);
            return;
        }
        map.insert(
            key.0,
            Entry {
                value,
                last_used: tick,
            },
        );
        drop(map);
        shard.inserts.fetch_add(1, Ordering::Relaxed);
        if need_evict {
            self.evict_global_lru(key);
        }
    }

    /// Pay one eviction debt with the globally least-recently-used entry,
    /// never evicting `protect` (the entry whose insert incurred the debt).
    fn evict_global_lru(&self, protect: Fingerprint) {
        for _ in 0..16 {
            // Pass 1: find the oldest entry, one shard lock at a time.
            let mut victim: Option<(usize, u128, u64)> = None;
            for (si, shard) in self.shards.iter().enumerate() {
                let map = shard.map.lock().unwrap();
                for (&k, e) in map.iter() {
                    if k != protect.0 && victim.is_none_or(|(_, _, t)| e.last_used < t) {
                        victim = Some((si, k, e.last_used));
                    }
                }
            }
            let Some((si, k, _)) = victim else {
                // Nothing evictable anywhere: concurrent evictors already
                // brought the cache under capacity; drop the debt.
                self.len.fetch_sub(1, Ordering::AcqRel);
                return;
            };
            // Pass 2: re-lock and remove. A touch between the passes just
            // makes the LRU choice approximate; a removal means another
            // evictor claimed the victim, so rescan.
            if self.shards[si].map.lock().unwrap().remove(&k).is_some() {
                self.len.fetch_sub(1, Ordering::AcqRel);
                self.shards[si].evictions.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        // Pathological contention: every scan lost its victim to another
        // evictor. Take any entry other than `protect`.
        for shard in &self.shards {
            let mut map = shard.map.lock().unwrap();
            if let Some(&k) = map.keys().find(|&&k| k != protect.0) {
                map.remove(&k);
                drop(map);
                self.len.fetch_sub(1, Ordering::AcqRel);
                shard.evictions.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        self.len.fetch_sub(1, Ordering::AcqRel);
    }

    /// Does the cache currently hold `key`? Unlike [`ScoreCache::get`]
    /// this neither refreshes recency nor touches the hit/miss counters,
    /// so warm-cache zero-miss invariants stay observable.
    pub fn contains(&self, key: Fingerprint) -> bool {
        self.shards[self.shard_of(key)]
            .map
            .lock()
            .unwrap()
            .contains_key(&key.0)
    }

    /// Current value of the logical LRU clock. Pair with
    /// [`ScoreCache::snapshot_since`] to export only the entries touched
    /// after a baseline (e.g. the working set of one work shard).
    pub fn current_tick(&self) -> u64 {
        self.tick.load(Ordering::Relaxed)
    }

    /// Export every resident entry, sorted by fingerprint.
    pub fn snapshot(&self) -> CacheSnapshot<V> {
        self.snapshot_since(0)
    }

    /// Export the entries whose recency is at or after `tick` (as returned
    /// by [`ScoreCache::current_tick`] at the baseline), sorted by
    /// fingerprint. Recency advances on both insert *and* lookup, so the
    /// export is the baseline-onwards working set — a superset of the new
    /// insertions, which is harmless because [`ScoreCache::merge`] is
    /// idempotent.
    pub fn snapshot_since(&self, tick: u64) -> CacheSnapshot<V> {
        let mut entries = Vec::new();
        for shard in &self.shards {
            let map = shard.map.lock().unwrap();
            for (&k, e) in map.iter() {
                if e.last_used >= tick {
                    entries.push((Fingerprint(k), e.value.clone()));
                }
            }
        }
        entries.sort_unstable_by_key(|(fp, _)| fp.0);
        CacheSnapshot { entries }
    }

    /// Replay a snapshot into this cache and return how many entries were
    /// new. Last writer wins on keys already present; since keys are
    /// content-addressed fingerprints, both writers must hold the same
    /// value — asserted in debug builds, so a fingerprint collision (or a
    /// non-deterministic producer) fails loudly instead of silently
    /// corrupting scores. Capacity and LRU eviction apply as usual.
    pub fn merge(&self, snapshot: &CacheSnapshot<V>) -> usize
    where
        V: PartialEq + std::fmt::Debug,
    {
        let mut fresh = 0;
        for (fp, value) in &snapshot.entries {
            #[cfg(debug_assertions)]
            {
                let map = self.shards[self.shard_of(*fp)].map.lock().unwrap();
                if let Some(existing) = map.get(&fp.0) {
                    assert!(
                        existing.value == *value,
                        "cache merge: key {:032x} maps to two different values \
                         ({:?} resident vs {:?} incoming)",
                        fp.0,
                        existing.value,
                        value
                    );
                }
            }
            if !self.contains(*fp) {
                fresh += 1;
            }
            self.insert(*fp, value.clone());
        }
        fresh
    }

    /// Per-shard counters and occupancy, in shard-index order.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards.iter().map(|s| s.stats()).collect()
    }

    /// Counters aggregated over every shard.
    pub fn stats(&self) -> CacheStats {
        let mut agg = CacheStats {
            capacity: self.capacity,
            ..CacheStats::default()
        };
        for s in self.shard_stats() {
            agg.hits += s.hits;
            agg.misses += s.misses;
            agg.inserts += s.inserts;
            agg.evictions += s.evictions;
            agg.len += s.len;
        }
        agg
    }
}

impl<V: Clone> std::fmt::Debug for ScoreCache<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScoreCache")
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(n: u128) -> Fingerprint {
        // Spread test keys over shards the way real digests would.
        Fingerprint(n.wrapping_mul(0x9E37_79B9_7F4A_7C15_F39C_0C93_A5B7_1D43))
    }

    #[test]
    fn get_after_insert() {
        let cache = ScoreCache::new(8);
        assert_eq!(cache.get(fp(1)), None);
        cache.insert(fp(1), 0.5f64);
        assert_eq!(cache.get(fp(1)), Some(0.5));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 1, 1));
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let cache = ScoreCache::new(10);
        for i in 0..100u128 {
            cache.insert(fp(i), i as f64);
            assert!(
                cache.len() <= 10,
                "len {} after {} inserts",
                cache.len(),
                i + 1
            );
        }
        let s = cache.stats();
        assert_eq!(s.inserts, 100);
        assert_eq!(s.evictions, 90);
        assert_eq!(s.len, 10);
    }

    #[test]
    fn recently_used_entries_survive_eviction_pressure() {
        let cache = ScoreCache::new(4);
        cache.insert(fp(0), 0.0f64);
        for i in 1..40u128 {
            // Touch key 0 so it stays the most recently used.
            assert_eq!(cache.get(fp(0)), Some(0.0));
            cache.insert(fp(i), i as f64);
        }
        assert_eq!(cache.get(fp(0)), Some(0.0), "hot entry was evicted");
    }

    #[test]
    fn reinsert_updates_in_place() {
        let cache = ScoreCache::new(2);
        cache.insert(fp(1), 1.0f64);
        cache.insert(fp(1), 2.0f64);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(fp(1)), Some(2.0));
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn shard_stats_sum_to_aggregate() {
        let cache = ScoreCache::new(16);
        for i in 0..64u128 {
            cache.insert(fp(i), i as f64);
            cache.get(fp(i));
            cache.get(fp(i + 1000));
        }
        let shards = cache.shard_stats();
        assert_eq!(shards.len(), 16);
        assert!(
            shards.iter().filter(|s| s.inserts > 0).count() > 1,
            "test keys should spread over several shards"
        );
        let agg = cache.stats();
        assert_eq!(shards.iter().map(|s| s.hits).sum::<u64>(), agg.hits);
        assert_eq!(shards.iter().map(|s| s.misses).sum::<u64>(), agg.misses);
        assert_eq!(shards.iter().map(|s| s.inserts).sum::<u64>(), agg.inserts);
        assert_eq!(
            shards.iter().map(|s| s.evictions).sum::<u64>(),
            agg.evictions
        );
        assert_eq!(shards.iter().map(|s| s.len).sum::<usize>(), agg.len);
        assert_eq!(agg.len, cache.len());
    }

    #[test]
    fn snapshot_exports_sorted_and_merge_restores() {
        let cache = ScoreCache::new(32);
        for i in 0..20u128 {
            cache.insert(fp(i), i as f64);
        }
        let snap = cache.snapshot();
        assert_eq!(snap.len(), 20);
        assert!(
            snap.entries.windows(2).all(|w| w[0].0 .0 < w[1].0 .0),
            "snapshot must be sorted by fingerprint"
        );
        let other: ScoreCache<f64> = ScoreCache::new(32);
        assert_eq!(other.merge(&snap), 20);
        for i in 0..20u128 {
            assert_eq!(other.get(fp(i)), Some(i as f64));
        }
        // Replaying the same snapshot is idempotent: nothing is new.
        assert_eq!(other.merge(&snap), 0);
        assert_eq!(other.len(), 20);
    }

    #[test]
    fn snapshot_since_exports_only_the_recent_working_set() {
        let cache = ScoreCache::new(64);
        for i in 0..10u128 {
            cache.insert(fp(i), i as f64);
        }
        let baseline = cache.current_tick();
        cache.insert(fp(100), 100.0);
        cache.insert(fp(101), 101.0);
        assert_eq!(cache.get(fp(3)), Some(3.0)); // touched: joins the set
        let snap = cache.snapshot_since(baseline);
        let keys: Vec<u128> = snap.entries.iter().map(|(f, _)| f.0).collect();
        assert_eq!(snap.len(), 3);
        assert!(keys.contains(&fp(100).0));
        assert!(keys.contains(&fp(101).0));
        assert!(keys.contains(&fp(3).0));
    }

    #[test]
    fn snapshot_serde_round_trips_exactly() {
        let cache = ScoreCache::new(16);
        cache.insert(fp(1), 0.1f64);
        cache.insert(fp(2), -0.0f64);
        cache.insert(fp(3), 3.0f64);
        cache.insert(Fingerprint(u128::MAX - 7), f64::MIN_POSITIVE);
        let snap = cache.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: CacheSnapshot<f64> = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), snap.len());
        for ((fa, va), (fb, vb)) in snap.entries.iter().zip(&back.entries) {
            assert_eq!(fa, fb);
            assert_eq!(va.to_bits(), vb.to_bits(), "f64 payload must be bit-exact");
        }
    }

    #[test]
    fn merge_overwrites_equal_values_without_growth() {
        let a = ScoreCache::new(8);
        let b = ScoreCache::new(8);
        a.insert(fp(1), 1.5f64);
        b.insert(fp(1), 1.5f64);
        b.insert(fp(2), 2.5f64);
        assert_eq!(a.merge(&b.snapshot()), 1);
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(fp(1)), Some(1.5));
        assert_eq!(a.get(fp(2)), Some(2.5));
    }

    #[test]
    #[should_panic(expected = "two different values")]
    #[cfg(debug_assertions)]
    fn merge_panics_on_conflicting_values_in_debug() {
        let a = ScoreCache::new(8);
        let b = ScoreCache::new(8);
        a.insert(fp(1), 1.0f64);
        b.insert(fp(1), 2.0f64);
        a.merge(&b.snapshot());
    }

    #[test]
    fn merge_respects_capacity() {
        let small: ScoreCache<f64> = ScoreCache::new(4);
        let big = ScoreCache::new(64);
        for i in 0..32u128 {
            big.insert(fp(i), i as f64);
        }
        small.merge(&big.snapshot());
        assert!(small.len() <= 4, "merge must evict to stay within capacity");
    }

    #[test]
    fn contains_does_not_touch_counters() {
        let cache = ScoreCache::new(8);
        cache.insert(fp(1), 1.0f64);
        assert!(cache.contains(fp(1)));
        assert!(!cache.contains(fp(2)));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (0, 0));
    }

    #[test]
    fn concurrent_insert_lookup_evict_holds_invariants() {
        use std::sync::Arc;
        let cache = Arc::new(ScoreCache::new(64));
        let n_threads = 8;
        let per_thread = 500u128;
        std::thread::scope(|scope| {
            for t in 0..n_threads {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let key = fp(t as u128 * per_thread + i);
                        cache.insert(key, i as f64);
                        // Mix in lookups of shared hot keys.
                        cache.get(fp(i % 7));
                        // Mid-flight residency may overshoot by one slot
                        // per concurrently inserting thread, and len()
                        // itself is a racy per-shard sum.
                        assert!(cache.len() <= 64 + 2 * n_threads);
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.len, cache.len());
        assert!(s.len <= 64);
        assert_eq!(s.inserts, n_threads as u64 * per_thread as u64);
        // Inserts beyond capacity are paid for by evictions (a rare race
        // can drop an eviction debt, never create phantom evictions).
        assert!(s.evictions <= s.inserts - s.len as u64);
        assert!(s.evictions >= s.inserts - s.len as u64 - 64);
    }
}
