//! Concurrent, content-addressed evaluation cache.
//!
//! Maps a [`Fingerprint`] to a cached score (generic payload `V`) across
//! 16 independently locked shards, with a global capacity bound, an
//! approximate-LRU eviction policy (global logical clock, per-shard LRU
//! scan), and atomic hit/miss/insert/evict counters kept *per shard*
//! (surfaced raw via [`ScoreCache::shard_stats`], aggregated by
//! [`ScoreCache::stats`]) so contention and key-skew are observable.
//!
//! Capacity invariant: once every in-flight `insert` has returned, the
//! number of resident entries is at most `capacity`; while inserts are in
//! flight, residency can overshoot by at most the number of concurrently
//! inserting threads (each over-capacity insert pays one eviction before
//! returning). The victim is the globally least-recently-used entry,
//! located by scanning the shards one lock at a time (O(len), but
//! eviction only happens at capacity, where each resident entry already
//! amortises a full CV evaluation). Locks are only ever held one shard at
//! a time, so there is no lock-ordering hazard; concurrent touches
//! between the scan and the removal merely make the LRU choice
//! approximate.

use crate::fingerprint::Fingerprint;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

const N_SHARDS: usize = 16;

struct Entry<V> {
    value: V,
    last_used: u64,
}

/// One lock domain of the cache, with its own counters so per-shard
/// statistics cost no extra synchronisation on the lookup path.
struct Shard<V> {
    map: Mutex<HashMap<u128, Entry<V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    /// Evictions are charged to the shard the victim lived in.
    evictions: AtomicU64,
}

impl<V> Shard<V> {
    fn new() -> Self {
        Shard {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn stats(&self) -> ShardStats {
        ShardStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            len: self.map.lock().unwrap().len(),
        }
    }
}

/// Per-shard counter snapshot returned by [`ScoreCache::shard_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    pub hits: u64,
    pub misses: u64,
    pub inserts: u64,
    pub evictions: u64,
    /// Resident entries in this shard at snapshot time.
    pub len: usize,
}

/// Counter snapshot returned by [`ScoreCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub inserts: u64,
    pub evictions: u64,
    /// Resident entries at snapshot time.
    pub len: usize,
    pub capacity: usize,
}

impl CacheStats {
    /// Hit fraction of all lookups so far (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter deltas relative to an earlier snapshot.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            inserts: self.inserts - earlier.inserts,
            evictions: self.evictions - earlier.evictions,
            len: self.len,
            capacity: self.capacity,
        }
    }
}

/// Sharded concurrent cache from [`Fingerprint`] to `V`.
pub struct ScoreCache<V> {
    shards: Vec<Shard<V>>,
    capacity: usize,
    /// Logical clock driving LRU ordering.
    tick: AtomicU64,
    /// Resident-entry counter (kept in sync with the shard maps).
    len: AtomicUsize,
}

impl<V: Clone> ScoreCache<V> {
    /// Create a cache bounded to `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        ScoreCache {
            shards: (0..N_SHARDS).map(|_| Shard::new()).collect(),
            capacity: capacity.max(1),
            tick: AtomicU64::new(0),
            len: AtomicUsize::new(0),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resident entries right now.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.map.lock().unwrap().len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard_of(&self, key: Fingerprint) -> usize {
        // High bits: FNV mixes the low bits last, the high bits are well
        // distributed for similar inputs either way.
        (key.0 >> 124) as usize % N_SHARDS
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Look up a cached value, refreshing its recency on hit.
    pub fn get(&self, key: Fingerprint) -> Option<V> {
        let tick = self.next_tick();
        let shard = &self.shards[self.shard_of(key)];
        let mut map = shard.map.lock().unwrap();
        match map.get_mut(&key.0) {
            Some(entry) => {
                entry.last_used = tick;
                shard.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.value.clone())
            }
            None => {
                shard.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert (or refresh) a value, evicting the approximate global LRU
    /// entry first if the cache is at capacity.
    pub fn insert(&self, key: Fingerprint, value: V) {
        let tick = self.next_tick();
        let idx = self.shard_of(key);
        {
            let mut map = self.shards[idx].map.lock().unwrap();
            if let Some(entry) = map.get_mut(&key.0) {
                entry.value = value;
                entry.last_used = tick;
                return;
            }
        }
        // Reserve a slot, insert, then pay any eviction debt. Paying after
        // the insert means a concurrent debtor always has a victim to find,
        // at the cost of letting residency overshoot `capacity` by at most
        // the number of concurrently inserting threads; the bound is exact
        // again as soon as every in-flight insert returns.
        let need_evict = self.len.fetch_add(1, Ordering::AcqRel) >= self.capacity;
        let shard = &self.shards[idx];
        let mut map = shard.map.lock().unwrap();
        if let Some(entry) = map.get_mut(&key.0) {
            // A concurrent inserter beat us to this key: refresh in place
            // and release the slot we reserved.
            entry.value = value;
            entry.last_used = tick;
            drop(map);
            self.len.fetch_sub(1, Ordering::AcqRel);
            return;
        }
        map.insert(
            key.0,
            Entry {
                value,
                last_used: tick,
            },
        );
        drop(map);
        shard.inserts.fetch_add(1, Ordering::Relaxed);
        if need_evict {
            self.evict_global_lru(key);
        }
    }

    /// Pay one eviction debt with the globally least-recently-used entry,
    /// never evicting `protect` (the entry whose insert incurred the debt).
    fn evict_global_lru(&self, protect: Fingerprint) {
        for _ in 0..16 {
            // Pass 1: find the oldest entry, one shard lock at a time.
            let mut victim: Option<(usize, u128, u64)> = None;
            for (si, shard) in self.shards.iter().enumerate() {
                let map = shard.map.lock().unwrap();
                for (&k, e) in map.iter() {
                    if k != protect.0 && victim.is_none_or(|(_, _, t)| e.last_used < t) {
                        victim = Some((si, k, e.last_used));
                    }
                }
            }
            let Some((si, k, _)) = victim else {
                // Nothing evictable anywhere: concurrent evictors already
                // brought the cache under capacity; drop the debt.
                self.len.fetch_sub(1, Ordering::AcqRel);
                return;
            };
            // Pass 2: re-lock and remove. A touch between the passes just
            // makes the LRU choice approximate; a removal means another
            // evictor claimed the victim, so rescan.
            if self.shards[si].map.lock().unwrap().remove(&k).is_some() {
                self.len.fetch_sub(1, Ordering::AcqRel);
                self.shards[si].evictions.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        // Pathological contention: every scan lost its victim to another
        // evictor. Take any entry other than `protect`.
        for shard in &self.shards {
            let mut map = shard.map.lock().unwrap();
            if let Some(&k) = map.keys().find(|&&k| k != protect.0) {
                map.remove(&k);
                drop(map);
                self.len.fetch_sub(1, Ordering::AcqRel);
                shard.evictions.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        self.len.fetch_sub(1, Ordering::AcqRel);
    }

    /// Per-shard counters and occupancy, in shard-index order.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards.iter().map(|s| s.stats()).collect()
    }

    /// Counters aggregated over every shard.
    pub fn stats(&self) -> CacheStats {
        let mut agg = CacheStats {
            capacity: self.capacity,
            ..CacheStats::default()
        };
        for s in self.shard_stats() {
            agg.hits += s.hits;
            agg.misses += s.misses;
            agg.inserts += s.inserts;
            agg.evictions += s.evictions;
            agg.len += s.len;
        }
        agg
    }
}

impl<V: Clone> std::fmt::Debug for ScoreCache<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScoreCache")
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(n: u128) -> Fingerprint {
        // Spread test keys over shards the way real digests would.
        Fingerprint(n.wrapping_mul(0x9E37_79B9_7F4A_7C15_F39C_0C93_A5B7_1D43))
    }

    #[test]
    fn get_after_insert() {
        let cache = ScoreCache::new(8);
        assert_eq!(cache.get(fp(1)), None);
        cache.insert(fp(1), 0.5f64);
        assert_eq!(cache.get(fp(1)), Some(0.5));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 1, 1));
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let cache = ScoreCache::new(10);
        for i in 0..100u128 {
            cache.insert(fp(i), i as f64);
            assert!(
                cache.len() <= 10,
                "len {} after {} inserts",
                cache.len(),
                i + 1
            );
        }
        let s = cache.stats();
        assert_eq!(s.inserts, 100);
        assert_eq!(s.evictions, 90);
        assert_eq!(s.len, 10);
    }

    #[test]
    fn recently_used_entries_survive_eviction_pressure() {
        let cache = ScoreCache::new(4);
        cache.insert(fp(0), 0.0f64);
        for i in 1..40u128 {
            // Touch key 0 so it stays the most recently used.
            assert_eq!(cache.get(fp(0)), Some(0.0));
            cache.insert(fp(i), i as f64);
        }
        assert_eq!(cache.get(fp(0)), Some(0.0), "hot entry was evicted");
    }

    #[test]
    fn reinsert_updates_in_place() {
        let cache = ScoreCache::new(2);
        cache.insert(fp(1), 1.0f64);
        cache.insert(fp(1), 2.0f64);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(fp(1)), Some(2.0));
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn shard_stats_sum_to_aggregate() {
        let cache = ScoreCache::new(16);
        for i in 0..64u128 {
            cache.insert(fp(i), i as f64);
            cache.get(fp(i));
            cache.get(fp(i + 1000));
        }
        let shards = cache.shard_stats();
        assert_eq!(shards.len(), 16);
        assert!(
            shards.iter().filter(|s| s.inserts > 0).count() > 1,
            "test keys should spread over several shards"
        );
        let agg = cache.stats();
        assert_eq!(shards.iter().map(|s| s.hits).sum::<u64>(), agg.hits);
        assert_eq!(shards.iter().map(|s| s.misses).sum::<u64>(), agg.misses);
        assert_eq!(shards.iter().map(|s| s.inserts).sum::<u64>(), agg.inserts);
        assert_eq!(
            shards.iter().map(|s| s.evictions).sum::<u64>(),
            agg.evictions
        );
        assert_eq!(shards.iter().map(|s| s.len).sum::<usize>(), agg.len);
        assert_eq!(agg.len, cache.len());
    }

    #[test]
    fn concurrent_insert_lookup_evict_holds_invariants() {
        use std::sync::Arc;
        let cache = Arc::new(ScoreCache::new(64));
        let n_threads = 8;
        let per_thread = 500u128;
        std::thread::scope(|scope| {
            for t in 0..n_threads {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let key = fp(t as u128 * per_thread + i);
                        cache.insert(key, i as f64);
                        // Mix in lookups of shared hot keys.
                        cache.get(fp(i % 7));
                        // Mid-flight residency may overshoot by one slot
                        // per concurrently inserting thread, and len()
                        // itself is a racy per-shard sum.
                        assert!(cache.len() <= 64 + 2 * n_threads);
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.len, cache.len());
        assert!(s.len <= 64);
        assert_eq!(s.inserts, n_threads as u64 * per_thread as u64);
        // Inserts beyond capacity are paid for by evictions (a rare race
        // can drop an eviction debt, never create phantom evictions).
        assert!(s.evictions <= s.inserts - s.len as u64);
        assert!(s.evictions >= s.inserts - s.len as u64 - 64);
    }
}
