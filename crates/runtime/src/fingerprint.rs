//! Content-addressed 128-bit fingerprints of evaluation inputs.
//!
//! See the crate docs for the full key scheme and collision assumptions.
//! The digest is FNV-1a over a length-prefixed, domain-tagged byte
//! encoding: every variable-length field is preceded by its length and
//! every logical section by a tag byte, so `("ab", "c")` and `("a", "bc")`
//! hash differently.

use tabular::{DataFrame, Label};

/// A 128-bit content fingerprint, used as a cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// Mix two fingerprints into one (non-commutative).
    pub fn combine(self, other: Fingerprint) -> Fingerprint {
        let mut h = Hasher128::new();
        h.write_u128(self.0);
        h.write_u128(other.0);
        h.finish()
    }
}

const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// Incremental FNV-1a-128 hasher with typed, length-prefixed writers.
#[derive(Debug, Clone)]
pub struct Hasher128 {
    state: u128,
}

impl Hasher128 {
    pub fn new() -> Self {
        Hasher128 { state: FNV_OFFSET }
    }

    pub fn write_byte(&mut self, b: u8) {
        self.state = (self.state ^ b as u128).wrapping_mul(FNV_PRIME);
    }

    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_byte(b);
        }
    }

    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    pub fn write_u128(&mut self, v: u128) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Hash the IEEE-754 bit pattern, so `-0.0 != 0.0` and NaN payloads
    /// are preserved — bit-exact content addressing.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Length-prefixed string write.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    pub fn finish(&self) -> Fingerprint {
        Fingerprint(self.state)
    }
}

impl Default for Hasher128 {
    fn default() -> Self {
        Self::new()
    }
}

/// Section tags keeping the frame encoding self-delimiting.
const TAG_FRAME: u8 = 0xF0;
const TAG_COLUMN: u8 = 0xF1;
const TAG_LABEL_CLASS: u8 = 0xF2;
const TAG_LABEL_REG: u8 = 0xF3;
const TAG_VALUES: u8 = 0xF4;

/// Fingerprint a bare value slice (length-prefixed, bit-exact). Used to
/// content-address derived per-column artifacts — e.g. the learners bin
/// cache keys quantised columns by the raw values they were built from.
pub fn fingerprint_values(values: &[f64]) -> Fingerprint {
    let mut h = Hasher128::new();
    h.write_byte(TAG_VALUES);
    h.write_u64(values.len() as u64);
    for &v in values {
        h.write_f64(v);
    }
    h.finish()
}

/// Fingerprint a frame's full content: name, shape, every column name and
/// value bit pattern, and the label.
pub fn fingerprint_frame(frame: &DataFrame) -> Fingerprint {
    let mut h = Hasher128::new();
    h.write_byte(TAG_FRAME);
    h.write_str(&frame.name);
    h.write_u64(frame.n_rows() as u64);
    h.write_u64(frame.n_cols() as u64);
    for col in frame.columns() {
        h.write_byte(TAG_COLUMN);
        h.write_str(&col.name);
        for &v in &col.values {
            h.write_f64(v);
        }
    }
    match frame.label() {
        Label::Class { y, n_classes } => {
            h.write_byte(TAG_LABEL_CLASS);
            h.write_u64(*n_classes as u64);
            for &c in y {
                h.write_u64(c as u64);
            }
        }
        Label::Reg(targets) => {
            h.write_byte(TAG_LABEL_REG);
            for &t in targets {
                h.write_f64(t);
            }
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::{Column, DataFrame, Label};

    fn frame(name: &str, vals: Vec<f64>) -> DataFrame {
        let n = vals.len();
        DataFrame::new(
            name,
            vec![Column::new("c0", vals)],
            Label::Class {
                y: (0..n).map(|i| i % 2).collect(),
                n_classes: 2,
            },
        )
        .unwrap()
    }

    #[test]
    fn equal_content_equal_fingerprint() {
        let a = frame("d", vec![1.0, 2.0, 3.0]);
        let b = frame("d", vec![1.0, 2.0, 3.0]);
        assert_eq!(fingerprint_frame(&a), fingerprint_frame(&b));
    }

    #[test]
    fn any_content_change_changes_fingerprint() {
        let base = fingerprint_frame(&frame("d", vec![1.0, 2.0, 3.0]));
        assert_ne!(base, fingerprint_frame(&frame("e", vec![1.0, 2.0, 3.0])));
        assert_ne!(base, fingerprint_frame(&frame("d", vec![1.0, 2.0, 4.0])));
        let mut renamed = frame("d", vec![1.0, 2.0, 3.0]);
        renamed = DataFrame::new(
            "d",
            vec![Column::new("other", renamed.columns()[0].values.clone())],
            renamed.label().clone(),
        )
        .unwrap();
        assert_ne!(base, fingerprint_frame(&renamed));
    }

    #[test]
    fn bit_level_sensitivity() {
        let a = fingerprint_frame(&frame("d", vec![0.0, 1.0]));
        let b = fingerprint_frame(&frame("d", vec![-0.0, 1.0]));
        assert_ne!(a, b, "-0.0 and 0.0 must address different entries");
    }

    #[test]
    fn label_distinguishes_class_from_reg() {
        let c = frame("d", vec![1.0, 2.0]);
        let r = DataFrame::new(
            "d",
            vec![Column::new("c0", vec![1.0, 2.0])],
            Label::Reg(vec![0.0, 1.0]),
        )
        .unwrap();
        assert_ne!(fingerprint_frame(&c), fingerprint_frame(&r));
    }

    #[test]
    fn combine_is_order_sensitive() {
        let a = Fingerprint(1);
        let b = Fingerprint(2);
        assert_ne!(a.combine(b), b.combine(a));
        assert_eq!(a.combine(b), a.combine(b));
    }

    #[test]
    fn length_prefix_prevents_concat_ambiguity() {
        let mut h1 = Hasher128::new();
        h1.write_str("ab");
        h1.write_str("c");
        let mut h2 = Hasher128::new();
        h2.write_str("a");
        h2.write_str("bc");
        assert_ne!(h1.finish(), h2.finish());
    }
}
