//! The caching evaluator: content-addressed memoization over any scorer.
//!
//! [`Scorer`] is the narrow interface a downstream evaluation backend
//! (in practice `learners::Evaluator`) implements; [`Evaluator`] wraps a
//! scorer with a shared [`ScoreCache`] so identical (dataset content,
//! learner config, folds, CV seed) evaluations are computed once.

use crate::cache::{CacheStats, ScoreCache};
use crate::fingerprint::{fingerprint_frame, Fingerprint, Hasher128};
use std::sync::Arc;
use tabular::DataFrame;

/// A downstream evaluation backend that the runtime can memoize.
pub trait Scorer {
    type Error;

    /// Digest of everything *besides the frame* that determines the
    /// score: learner kind and hyper-parameters, fold count, CV seed.
    /// Two scorers with equal digests must score equal frames equally.
    fn config_digest(&self) -> Fingerprint;

    /// Run the full (cross-validated) evaluation of a frame.
    fn score_frame(&self, frame: &DataFrame) -> Result<f64, Self::Error>;
}

/// Default cache capacity: comfortably holds every distinct candidate of
/// a full two-stage run at paper scale while bounding memory (entries
/// are 16-byte keys + 8-byte scores plus map overhead).
pub const DEFAULT_CACHE_CAPACITY: usize = 65_536;

/// A scorer wrapped with a content-addressed score cache.
///
/// Clones share the same cache, so one `Evaluator` can be handed to
/// several consumers (engine loops, baselines, FPE labeling) and they
/// all benefit from each other's evaluations.
pub struct Evaluator<S> {
    scorer: S,
    cache: Arc<ScoreCache<f64>>,
}

impl<S: Clone> Clone for Evaluator<S> {
    fn clone(&self) -> Self {
        Evaluator {
            scorer: self.scorer.clone(),
            cache: Arc::clone(&self.cache),
        }
    }
}

impl<S: Scorer> Evaluator<S> {
    /// Wrap `scorer` with a fresh cache of [`DEFAULT_CACHE_CAPACITY`].
    pub fn new(scorer: S) -> Self {
        Self::with_capacity(scorer, DEFAULT_CACHE_CAPACITY)
    }

    pub fn with_capacity(scorer: S, capacity: usize) -> Self {
        Evaluator {
            scorer,
            cache: Arc::new(ScoreCache::new(capacity)),
        }
    }

    /// Wrap `scorer` around an existing (shared) cache.
    pub fn with_cache(scorer: S, cache: Arc<ScoreCache<f64>>) -> Self {
        Evaluator { scorer, cache }
    }

    /// The cache key for `frame` under this scorer's configuration.
    pub fn cache_key(&self, frame: &DataFrame) -> Fingerprint {
        let mut h = Hasher128::new();
        h.write_u128(self.scorer.config_digest().0);
        h.write_u128(fingerprint_frame(frame).0);
        h.finish()
    }

    /// Evaluate `frame`, serving repeats from cache. Errors are not
    /// cached: a failing evaluation is re-attempted on the next call.
    pub fn evaluate(&self, frame: &DataFrame) -> Result<f64, S::Error> {
        let key = self.cache_key(frame);
        if let Some(score) = self.cache.get(key) {
            telemetry::count("evaluator.cache_hits", 1);
            return Ok(score);
        }
        let score = {
            let _span = telemetry::span("evaluator.score_frame");
            self.scorer.score_frame(frame)?
        };
        telemetry::count("evaluator.evals_computed", 1);
        self.cache.insert(key, score);
        Ok(score)
    }

    pub fn scorer(&self) -> &S {
        &self.scorer
    }

    pub fn scorer_mut(&mut self) -> &mut S {
        &mut self.scorer
    }

    pub fn cache(&self) -> &Arc<ScoreCache<f64>> {
        &self.cache
    }

    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use tabular::{Column, DataFrame, Label};

    struct CountingScorer {
        digest: u128,
        calls: AtomicUsize,
    }

    impl CountingScorer {
        fn new(digest: u128) -> Self {
            CountingScorer {
                digest,
                calls: AtomicUsize::new(0),
            }
        }
    }

    impl Scorer for CountingScorer {
        type Error = std::convert::Infallible;

        fn config_digest(&self) -> Fingerprint {
            Fingerprint(self.digest)
        }

        fn score_frame(&self, frame: &DataFrame) -> Result<f64, Self::Error> {
            self.calls.fetch_add(1, Ordering::SeqCst);
            Ok(frame.columns()[0].values.iter().sum())
        }
    }

    fn frame(vals: Vec<f64>) -> DataFrame {
        let n = vals.len();
        DataFrame::new(
            "t",
            vec![Column::new("c", vals)],
            Label::Class {
                y: vec![0; n],
                n_classes: 1,
            },
        )
        .unwrap()
    }

    #[test]
    fn repeat_evaluations_hit_cache() {
        let ev = Evaluator::new(CountingScorer::new(1));
        let f = frame(vec![1.0, 2.0]);
        assert_eq!(ev.evaluate(&f).unwrap(), 3.0);
        assert_eq!(ev.evaluate(&f).unwrap(), 3.0);
        assert_eq!(ev.scorer().calls.load(Ordering::SeqCst), 1);
        let s = ev.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn equal_content_shares_entry_across_frame_objects() {
        let ev = Evaluator::new(CountingScorer::new(1));
        ev.evaluate(&frame(vec![1.0, 2.0])).unwrap();
        ev.evaluate(&frame(vec![1.0, 2.0])).unwrap();
        assert_eq!(ev.scorer().calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn config_digest_partitions_the_cache() {
        let cache = Arc::new(ScoreCache::new(64));
        let a = Evaluator::with_cache(CountingScorer::new(1), Arc::clone(&cache));
        let b = Evaluator::with_cache(CountingScorer::new(2), Arc::clone(&cache));
        let f = frame(vec![1.0]);
        a.evaluate(&f).unwrap();
        b.evaluate(&f).unwrap();
        assert_eq!(a.scorer().calls.load(Ordering::SeqCst), 1);
        assert_eq!(b.scorer().calls.load(Ordering::SeqCst), 1);
        assert_eq!(
            cache.stats().inserts,
            2,
            "different configs, different keys"
        );
    }

    #[test]
    fn different_content_misses() {
        let ev = Evaluator::new(CountingScorer::new(1));
        ev.evaluate(&frame(vec![1.0])).unwrap();
        ev.evaluate(&frame(vec![2.0])).unwrap();
        assert_eq!(ev.scorer().calls.load(Ordering::SeqCst), 2);
    }
}
