//! Deterministic per-task seed derivation.
//!
//! Parallel code must never draw seeds from a shared sequential RNG: the
//! draw order would depend on scheduling. Instead each task derives its
//! seed as a pure function of `(root, stream, index)` — identical under
//! any thread count, which is what makes parallel runs reproduce
//! single-threaded results bit-for-bit.

/// SplitMix64 output function (Steele et al.): a bijective avalanche mix.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive the seed for task `index` of logical stream `stream` under root
/// seed `root`.
///
/// Distinct `(root, stream, index)` triples give statistically independent
/// seeds; the same triple always gives the same seed. `stream` separates
/// different uses inside one component (e.g. "per-tree fit" vs.
/// "per-fold split") so equal indices do not collide.
pub fn derive_seed(root: u64, stream: u64, index: u64) -> u64 {
    mix(mix(root ^ mix(stream)) ^ index)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_function_of_inputs() {
        assert_eq!(derive_seed(1, 2, 3), derive_seed(1, 2, 3));
    }

    #[test]
    fn components_all_matter() {
        let base = derive_seed(1, 2, 3);
        assert_ne!(base, derive_seed(9, 2, 3));
        assert_ne!(base, derive_seed(1, 9, 3));
        assert_ne!(base, derive_seed(1, 2, 9));
    }

    #[test]
    fn no_collisions_over_small_grid() {
        let mut seen = std::collections::HashSet::new();
        for root in 0..8u64 {
            for stream in 0..8u64 {
                for index in 0..64u64 {
                    assert!(
                        seen.insert(derive_seed(root, stream, index)),
                        "collision at ({root},{stream},{index})"
                    );
                }
            }
        }
    }
}
