//! Process-wide content-addressed **signature cache** for weighted-MinHash
//! sketches — the PR-3 bin-cache pattern applied to the FPE sketch path.
//!
//! The FPE gate, `RawLabels` labelling, and FPE model selection all sketch
//! feature columns through a [`SampleCompressor`], and the same column
//! content recurs constantly: corpus columns are re-sketched for every
//! candidate `(family, d)` pair sharing a family, across train/val splits,
//! and generated columns repeat across epochs and agents. A signature
//! depends only on `(column content, family, d, seed)`, so it is cached
//! content-addressed: the key is a 128-bit FNV-1a digest over a domain
//! tag, the hash family, `d`, the seed, and the IEEE-754 bit patterns of
//! the raw column ([`fingerprint_values`]). Two differently-derived
//! pipelines producing bit-identical columns share one entry; the
//! collision analysis in the crate root applies unchanged.
//!
//! Two key domains keep the addressing honest: [`signature_cached`] hashes
//! the weight vector it sketches directly, while the compressor-path entry
//! points hash the **raw** column and cache the signature of
//! `SampleCompressor::to_weights(column)` — the same float vector seen
//! through the two paths must not collide.
//!
//! Cached values are `Arc<Signature>` (`d` × 8 bytes each, ~12 MB at the
//! default capacity and `d = 48`); the compressed vector is rebuilt from
//! the signature with a plain gather, which keeps the cache insensitive to
//! normalisation flavour.

use crate::cache::{CacheSnapshot, CacheStats, ScoreCache, ShardStats};
use crate::fingerprint::{fingerprint_values, Fingerprint, Hasher128};
use crate::pool::WorkerPool;
use minhash::{SampleCompressor, Signature, WeightedMinHasher};
use std::sync::{Arc, OnceLock};

/// Capacity of the process-wide signature cache. Entries are one
/// `d`-element signature each (8 bytes per element), so the default stays
/// in the tens of megabytes even at paper scale.
pub const SIG_CACHE_CAPACITY: usize = 32_768;

/// Columns per [`WorkerPool`] task when batch-sketching misses: large
/// enough to amortise task dispatch, small enough to load-balance.
const BATCH_CHUNK: usize = 32;

/// The signature cache's value type.
pub type SignatureCache = ScoreCache<Arc<Signature>>;

fn sig_cache() -> &'static SignatureCache {
    static CACHE: OnceLock<SignatureCache> = OnceLock::new();
    CACHE.get_or_init(|| ScoreCache::new(SIG_CACHE_CAPACITY))
}

/// Counters of the process-wide signature cache (hits = columns served
/// without re-sketching).
pub fn sig_cache_stats() -> CacheStats {
    sig_cache().stats()
}

/// Per-shard counters of the signature cache (for `--metrics` surfacing).
pub fn sig_cache_shard_stats() -> Vec<ShardStats> {
    sig_cache().shard_stats()
}

/// Current logical clock of the process-wide signature cache; baseline
/// for [`sig_cache_snapshot_since`].
pub fn sig_cache_tick() -> u64 {
    sig_cache().current_tick()
}

/// Export the global signature cache's entries touched at or after the
/// `tick` baseline, as owned [`Signature`] payloads (the `Arc` wrapper is
/// a process-local detail, so snapshots stay serde-serializable and
/// merge-able across process boundaries).
pub fn sig_cache_snapshot_since(tick: u64) -> CacheSnapshot<Signature> {
    let inner = sig_cache().snapshot_since(tick);
    CacheSnapshot {
        entries: inner
            .entries
            .into_iter()
            .map(|(fp, sig)| (fp, (*sig).clone()))
            .collect(),
    }
}

/// Export every resident entry of the global signature cache.
pub fn sig_cache_snapshot() -> CacheSnapshot<Signature> {
    sig_cache_snapshot_since(0)
}

/// Replay a signature snapshot (e.g. from another process) into the
/// global cache; returns how many entries were new. Content-addressed
/// keys make the merge idempotent, and in debug builds a key mapping to
/// two different signatures panics.
pub fn sig_cache_merge(snapshot: &CacheSnapshot<Signature>) -> usize {
    let wrapped = CacheSnapshot {
        entries: snapshot
            .entries
            .iter()
            .map(|(fp, sig)| (*fp, Arc::new(sig.clone())))
            .collect(),
    };
    sig_cache().merge(&wrapped)
}

fn raw_key(hasher: &WeightedMinHasher, weights: &[f64]) -> Fingerprint {
    let mut h = Hasher128::new();
    h.write_str("runtime::SignatureCache");
    h.write_str("raw");
    h.write_str(hasher.family.name());
    h.write_u64(hasher.d as u64);
    h.write_u64(hasher.seed);
    h.write_u128(fingerprint_values(weights).0);
    h.finish()
}

fn compressor_key(c: &SampleCompressor, values: &[f64]) -> Fingerprint {
    let mut h = Hasher128::new();
    h.write_str("runtime::SignatureCache");
    h.write_str("compressor");
    h.write_str(c.family().name());
    h.write_u64(c.d() as u64);
    h.write_u64(c.seed());
    h.write_u128(fingerprint_values(values).0);
    h.finish()
}

/// Sketch a weight vector through the cache: a weight vector whose
/// `(content, family, d, seed)` was sketched before is served without
/// recomputation; misses go through the table-driven kernel.
pub fn signature_cached(
    hasher: &WeightedMinHasher,
    weights: &[f64],
) -> minhash::Result<Arc<Signature>> {
    let cache = sig_cache();
    let key = raw_key(hasher, weights);
    if let Some(hit) = cache.get(key) {
        telemetry::count("minhash.sig_cache_hits", 1);
        return Ok(hit);
    }
    let sig = Arc::new(hasher.signature_tabled(weights)?);
    cache.insert(key, Arc::clone(&sig));
    Ok(sig)
}

/// A column's compressor signature through the cache (the raw column is
/// the address; the cached value is the sketch of its `to_weights`).
pub fn compressor_signature_cached(
    c: &SampleCompressor,
    values: &[f64],
) -> minhash::Result<Arc<Signature>> {
    let cache = sig_cache();
    let key = compressor_key(c, values);
    if let Some(hit) = cache.get(key) {
        telemetry::count("minhash.sig_cache_hits", 1);
        return Ok(hit);
    }
    let sig = Arc::new(c.signature(values)?);
    cache.insert(key, Arc::clone(&sig));
    Ok(sig)
}

/// Cached drop-in for `SampleCompressor::compress_normalized`: signature
/// from the cache (sketching on miss), compressed vector rebuilt by
/// gather + z-score. Bit-identical to the uncached call.
pub fn compress_normalized_cached(
    c: &SampleCompressor,
    values: &[f64],
) -> minhash::Result<Vec<f64>> {
    let sig = compressor_signature_cached(c, values)?;
    Ok(c.compress_normalized_with_signature(values, &sig))
}

/// Compress many columns through cache + batch kernel: one cache probe per
/// column, then all missing columns sketched via
/// `SampleCompressor::signature_batch` in [`WorkerPool`] chunks (telemetry
/// spans carry over to worker threads via the pool's `parent_scope`).
/// Per-column output is bit-identical to
/// `SampleCompressor::compress_normalized`.
pub fn compress_normalized_batch(
    c: &SampleCompressor,
    cols: &[&[f64]],
) -> minhash::Result<Vec<Vec<f64>>> {
    let cache = sig_cache();
    let mut sigs: Vec<Option<Arc<Signature>>> = Vec::with_capacity(cols.len());
    let mut misses: Vec<usize> = Vec::new();
    let mut keys: Vec<Fingerprint> = Vec::with_capacity(cols.len());
    for (j, col) in cols.iter().enumerate() {
        let key = compressor_key(c, col);
        keys.push(key);
        match cache.get(key) {
            Some(hit) => {
                telemetry::count("minhash.sig_cache_hits", 1);
                sigs.push(Some(hit));
            }
            None => {
                misses.push(j);
                sigs.push(None);
            }
        }
    }
    if !misses.is_empty() {
        let chunks: Vec<Vec<usize>> = misses.chunks(BATCH_CHUNK).map(|c| c.to_vec()).collect();
        let sketched = WorkerPool::new().map(chunks, |_ctx, chunk| {
            let chunk_cols: Vec<&[f64]> = chunk.iter().map(|&j| cols[j]).collect();
            let sigs = c.signature_batch(&chunk_cols)?;
            Ok::<_, minhash::MinHashError>((chunk, sigs))
        });
        for result in sketched {
            let (chunk, chunk_sigs) = result?;
            for (j, sig) in chunk.into_iter().zip(chunk_sigs) {
                let sig = Arc::new(sig);
                cache.insert(keys[j], Arc::clone(&sig));
                sigs[j] = Some(sig);
            }
        }
    }
    Ok(cols
        .iter()
        .zip(&sigs)
        .map(|(col, sig)| {
            c.compress_normalized_with_signature(col, sig.as_ref().expect("all signatures filled"))
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use minhash::HashFamily;

    fn col(seed: u64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| ((i as f64) * 0.7 + seed as f64).sin())
            .collect()
    }

    #[test]
    fn cached_compress_matches_direct_and_hits_on_repeat() {
        let c = SampleCompressor::new(HashFamily::Ccws, 32, 0xF00D).unwrap();
        let values = col(1, 300);
        let direct = c.compress_normalized(&values).unwrap();
        let cached = compress_normalized_cached(&c, &values).unwrap();
        assert_eq!(direct, cached);
        let before = sig_cache_stats();
        let again = compress_normalized_cached(&c, &values).unwrap();
        let after = sig_cache_stats();
        assert_eq!(direct, again);
        assert!(after.hits > before.hits, "repeat sketch must hit the cache");
        assert_eq!(after.misses, before.misses, "repeat sketch must not miss");
    }

    #[test]
    fn batch_matches_per_column_and_warm_batch_is_all_hits() {
        let c = SampleCompressor::new(HashFamily::Icws, 24, 0xBEEF).unwrap();
        let cols: Vec<Vec<f64>> = (0..40).map(|s| col(s, 120)).collect();
        let refs: Vec<&[f64]> = cols.iter().map(Vec::as_slice).collect();
        let batch = compress_normalized_batch(&c, &refs).unwrap();
        for (col, out) in cols.iter().zip(&batch) {
            assert_eq!(out, &c.compress_normalized(col).unwrap());
        }
        let before = sig_cache_stats();
        let warm = compress_normalized_batch(&c, &refs).unwrap();
        let after = sig_cache_stats();
        assert_eq!(batch, warm);
        assert_eq!(after.misses, before.misses, "warm batch must be miss-free");
        assert!(after.hits >= before.hits + cols.len() as u64);
    }

    #[test]
    fn raw_and_compressor_domains_do_not_collide() {
        // The same float vector addressed as raw weights vs as a raw
        // column must produce different keys (the compressor path sketches
        // to_weights(values), not values).
        let h = WeightedMinHasher::new(HashFamily::Ccws, 16, 9).unwrap();
        let c = SampleCompressor::new(HashFamily::Ccws, 16, 9).unwrap();
        let v: Vec<f64> = (0..50).map(|i| 0.1 + i as f64).collect();
        assert_ne!(raw_key(&h, &v), compressor_key(&c, &v));
        let raw = signature_cached(&h, &v).unwrap();
        let comp = compressor_signature_cached(&c, &v).unwrap();
        assert_eq!(*raw, h.signature(&v).unwrap());
        assert_eq!(*comp, c.signature(&v).unwrap());
    }

    #[test]
    fn sig_snapshot_merge_round_trips_and_is_idempotent() {
        let c = SampleCompressor::new(HashFamily::Pcws, 16, 0xD157).unwrap();
        let values = col(7, 200);
        let baseline = sig_cache_tick();
        let direct = compressor_signature_cached(&c, &values).unwrap();
        let snap = sig_cache_snapshot_since(baseline);
        assert!(
            snap.entries
                .iter()
                .any(|(k, sig)| *k == compressor_key(&c, &values) && *sig == *direct),
            "snapshot must contain the entry sketched after the baseline"
        );
        // Merging a snapshot back into the cache it came from is a no-op
        // (every key already resident with an equal value).
        assert_eq!(sig_cache_merge(&snap), 0);
        // A foreign entry merges in and is then served as a hit.
        let foreign_values = col(77, 200);
        let foreign_key = compressor_key(&c, &foreign_values);
        let foreign_sig = c.signature(&foreign_values).unwrap();
        let foreign = CacheSnapshot {
            entries: vec![(foreign_key, foreign_sig.clone())],
        };
        let before = sig_cache_stats();
        assert_eq!(sig_cache_merge(&foreign), 1);
        let served = compressor_signature_cached(&c, &foreign_values).unwrap();
        assert_eq!(*served, foreign_sig);
        let after = sig_cache_stats();
        assert_eq!(after.misses, before.misses, "merged entry must serve hits");
    }

    #[test]
    fn batch_propagates_column_errors() {
        let c = SampleCompressor::new(HashFamily::Ccws, 8, 1).unwrap();
        let good = col(3, 50);
        let empty: Vec<f64> = vec![];
        assert!(compress_normalized_batch(&c, &[&good, &empty]).is_err());
    }
}
