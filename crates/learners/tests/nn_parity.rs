//! Batched-vs-scalar parity for the neural learners (proptest): training
//! through the flat batched kernels in `learners::dense` must be
//! **bit-identical** to the retained per-sample scalar reference — same
//! trained parameter slab, same predictions, same embeddings — for both
//! topologies (MLP / tabular ResNet) and both heads (softmax classifier /
//! MSE regressor), across batch sizes that do *not* divide the row count
//! (so the ragged tail minibatch and the ragged tail microbatch are both
//! exercised). Plus a GP check pinning the row-slice kernel fill +
//! Cholesky against a straight-line reference built from `Vec<Vec<f64>>`
//! rows and the scalar `cholesky_ref`.

use learners::linalg::{sq_dist, SquareMatrix};
use learners::preprocess::{to_row_major, Standardizer};
use learners::{
    GaussianProcess, GpConfig, MlpClassifier, MlpConfig, MlpRegressor, NnBackend, ResNetClassifier,
    ResNetConfig, ResNetRegressor,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Column-major matrix with `n_features` columns of uniform noise.
fn matrix(rng: &mut StdRng, n_rows: usize, n_features: usize) -> Vec<Vec<f64>> {
    (0..n_features)
        .map(|_| (0..n_rows).map(|_| rng.gen_range(-2.0f64..2.0)).collect())
        .collect()
}

/// A learnable label: does the first feature pair sum above zero?
fn labels(x: &[Vec<f64>]) -> Vec<usize> {
    (0..x[0].len())
        .map(|r| usize::from(x[0][r] + x[1][r] > 0.0))
        .collect()
}

/// A learnable target: a fixed linear combination of the features.
fn targets(x: &[Vec<f64>]) -> Vec<f64> {
    (0..x[0].len())
        .map(|r| {
            x.iter()
                .enumerate()
                .map(|(f, c)| (f + 1) as f64 * c[r])
                .sum()
        })
        .collect()
}

fn assert_params_bit_equal(a: Option<&[f64]>, b: Option<&[f64]>) {
    let (a, b) = (a.expect("fitted"), b.expect("fitted"));
    assert_eq!(a.len(), b.len());
    for (i, (p, q)) in a.iter().zip(b).enumerate() {
        assert_eq!(p.to_bits(), q.to_bits(), "param {i}: {p} vs {q}");
    }
}

fn assert_columns_bit_equal(a: &[Vec<f64>], b: &[Vec<f64>]) {
    assert_eq!(a.len(), b.len());
    for (ca, cb) in a.iter().zip(b) {
        assert_eq!(ca.len(), cb.len());
        for (p, q) in ca.iter().zip(cb) {
            assert_eq!(p.to_bits(), q.to_bits(), "{p} vs {q}");
        }
    }
}

/// Row counts `3·batch + extra` with `extra in 1..7`: the final minibatch
/// is ragged for both generated batch sizes (7 and 10), and with
/// `TRAIN_MICROBATCH = 8` the size-10 minibatches also split into a full
/// microbatch plus a ragged 2-row one.
fn dims(batch: usize, extra: usize) -> usize {
    batch * 3 + extra
}

/// Microbatch gradient reduction pinned exactly at the pool-dispatch
/// boundary: the batched trainer ships a minibatch to the worker pool
/// only when `rows × params >= PARALLEL_GRAIN`, a condition the random
/// sizes above never reach. Row counts one below, exactly at, and one
/// past the boundary must all train bit-identically to the scalar
/// reference — on one thread and on four — so crossing the dispatch
/// threshold can move *where* partials are computed but never a bit of
/// what they sum to.
#[test]
fn pool_grain_boundary_row_counts_bit_identical() {
    use learners::dense::{PARALLEL_GRAIN, TRAIN_MICROBATCH};

    let n_features = 20usize;
    let cfg_of = |rows: usize| MlpConfig {
        hidden: 64,
        epochs: 1,
        batch_size: rows, // one full-size minibatch per epoch
        seed: 77,
        ..Default::default()
    };
    // Parameter count depends only on the topology, not the row count —
    // probe it with a tiny fit instead of hard-coding layer arithmetic.
    let mut rng = StdRng::seed_from_u64(424);
    let probe_x = matrix(&mut rng, 16, n_features);
    let probe_y = labels(&probe_x);
    let mut probe = MlpClassifier::new(cfg_of(16));
    probe.fit(&probe_x, &probe_y, 2).unwrap();
    let n_params = probe.trained_params().unwrap().len();
    let rows_at = PARALLEL_GRAIN.div_ceil(n_params);
    assert!(
        rows_at > TRAIN_MICROBATCH + 1,
        "boundary minibatch must span several microbatches (rows_at = {rows_at})"
    );

    for rows in [rows_at - 1, rows_at, rows_at + 1] {
        let x = matrix(&mut rng, rows, n_features);
        let y = labels(&x);
        let base = cfg_of(rows);
        let mut scalar = MlpClassifier::new(MlpConfig {
            backend: NnBackend::Scalar,
            ..base
        });
        scalar.fit(&x, &y, 2).unwrap();

        runtime::set_global_threads(1);
        let mut batched_1t = MlpClassifier::new(base);
        batched_1t.fit(&x, &y, 2).unwrap();
        runtime::set_global_threads(4);
        let mut batched_4t = MlpClassifier::new(base);
        batched_4t.fit(&x, &y, 2).unwrap();
        runtime::set_global_threads(0);

        assert_params_bit_equal(batched_1t.trained_params(), scalar.trained_params());
        assert_params_bit_equal(batched_4t.trained_params(), scalar.trained_params());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn mlp_classifier_backends_bit_identical(
        seed in 0u64..1_000_000,
        batch in prop_oneof![Just(7usize), Just(10usize)],
        extra in 1usize..7,
        n_features in 2usize..5,
    ) {
        let n_rows = dims(batch, extra);
        let mut rng = StdRng::seed_from_u64(seed);
        let x = matrix(&mut rng, n_rows, n_features);
        let y = labels(&x);
        let base = MlpConfig {
            hidden: 8,
            epochs: 3,
            batch_size: batch,
            seed,
            ..Default::default()
        };
        let mut batched = MlpClassifier::new(base);
        let mut scalar = MlpClassifier::new(MlpConfig {
            backend: NnBackend::Scalar,
            ..base
        });
        batched.fit(&x, &y, 2).expect("batched fit");
        scalar.fit(&x, &y, 2).expect("scalar fit");
        assert_params_bit_equal(batched.trained_params(), scalar.trained_params());
        prop_assert_eq!(batched.predict(&x).unwrap(), scalar.predict(&x).unwrap());
    }

    #[test]
    fn mlp_regressor_backends_bit_identical(
        seed in 0u64..1_000_000,
        batch in prop_oneof![Just(7usize), Just(10usize)],
        extra in 1usize..7,
        n_features in 2usize..5,
    ) {
        let n_rows = dims(batch, extra);
        let mut rng = StdRng::seed_from_u64(seed);
        let x = matrix(&mut rng, n_rows, n_features);
        let y = targets(&x);
        let base = MlpConfig {
            hidden: 8,
            epochs: 3,
            batch_size: batch,
            seed,
            ..Default::default()
        };
        let mut batched = MlpRegressor::new(base);
        let mut scalar = MlpRegressor::new(MlpConfig {
            backend: NnBackend::Scalar,
            ..base
        });
        batched.fit(&x, &y).expect("batched fit");
        scalar.fit(&x, &y).expect("scalar fit");
        assert_params_bit_equal(batched.trained_params(), scalar.trained_params());
        for (p, q) in batched
            .predict(&x)
            .unwrap()
            .iter()
            .zip(&scalar.predict(&x).unwrap())
        {
            prop_assert_eq!(p.to_bits(), q.to_bits(), "prediction {} vs {}", p, q);
        }
    }

    #[test]
    fn resnet_classifier_backends_bit_identical(
        seed in 0u64..1_000_000,
        batch in prop_oneof![Just(7usize), Just(10usize)],
        extra in 1usize..7,
        n_features in 2usize..5,
        n_blocks in 1usize..3,
    ) {
        let n_rows = dims(batch, extra);
        let mut rng = StdRng::seed_from_u64(seed);
        let x = matrix(&mut rng, n_rows, n_features);
        let y = labels(&x);
        let base = ResNetConfig {
            width: 8,
            n_blocks,
            epochs: 2,
            batch_size: batch,
            seed,
            ..Default::default()
        };
        let mut batched = ResNetClassifier::new(base);
        let mut scalar = ResNetClassifier::new(ResNetConfig {
            backend: NnBackend::Scalar,
            ..base
        });
        batched.fit(&x, &y, 2).expect("batched fit");
        scalar.fit(&x, &y, 2).expect("scalar fit");
        assert_params_bit_equal(batched.trained_params(), scalar.trained_params());
        prop_assert_eq!(batched.predict(&x).unwrap(), scalar.predict(&x).unwrap());
        // The RTDL re-heading consumes this embedding — it must also match.
        assert_columns_bit_equal(&batched.embed(&x).unwrap(), &scalar.embed(&x).unwrap());
    }

    #[test]
    fn resnet_regressor_backends_bit_identical(
        seed in 0u64..1_000_000,
        batch in prop_oneof![Just(7usize), Just(10usize)],
        extra in 1usize..7,
        n_features in 2usize..5,
    ) {
        let n_rows = dims(batch, extra);
        let mut rng = StdRng::seed_from_u64(seed);
        let x = matrix(&mut rng, n_rows, n_features);
        let y = targets(&x);
        let base = ResNetConfig {
            width: 8,
            n_blocks: 1,
            epochs: 2,
            batch_size: batch,
            seed,
            ..Default::default()
        };
        let mut batched = ResNetRegressor::new(base);
        let mut scalar = ResNetRegressor::new(ResNetConfig {
            backend: NnBackend::Scalar,
            ..base
        });
        batched.fit(&x, &y).expect("batched fit");
        scalar.fit(&x, &y).expect("scalar fit");
        assert_params_bit_equal(batched.trained_params(), scalar.trained_params());
        for (p, q) in batched
            .predict(&x)
            .unwrap()
            .iter()
            .zip(&scalar.predict(&x).unwrap())
        {
            prop_assert_eq!(p.to_bits(), q.to_bits(), "prediction {} vs {}", p, q);
        }
    }

    /// GP posterior means through the row-slice kernel fill + row-slice
    /// Cholesky must be bit-identical to a reference computed the old
    /// way: `Vec<Vec<f64>>` training rows, per-element kernel fill, and
    /// the retained scalar `cholesky_ref`.
    #[test]
    fn gp_matches_scalar_reference_bitwise(
        seed in 0u64..1_000_000,
        n_rows in 10usize..30,
        n_features in 1usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = matrix(&mut rng, n_rows, n_features);
        let y: Vec<f64> = targets(&x).iter().map(|t| t.sin()).collect();

        let config = GpConfig::default();
        let mut gp = GaussianProcess::new(config);
        gp.fit(&x, &y).expect("gp fit");
        let preds = gp.predict(&x).expect("gp predict");

        // Straight-line reference (no row cap hit: n_rows << max_train_rows).
        let scaler = Standardizer::fit(&x);
        let rows = to_row_major(&scaler.transform(&x));
        let n = rows.len();
        let y_mean = y.iter().sum::<f64>() / n as f64;
        let var = y.iter().map(|t| (t - y_mean).powi(2)).sum::<f64>() / n as f64;
        let y_std = var.sqrt().max(1e-12);
        let yz: Vec<f64> = y.iter().map(|t| (t - y_mean) / y_std).collect();
        let ls2 = config.length_scale * config.length_scale;
        let kernel = |a: &[f64], b: &[f64]| (-sq_dist(a, b) / (2.0 * ls2)).exp();
        let mut k = SquareMatrix::zeros(n);
        for i in 0..n {
            for j in 0..=i {
                let v = kernel(&rows[i], &rows[j]);
                k.set(i, j, v);
                k.set(j, i, v);
            }
        }
        k.add_diagonal(config.noise.max(1e-10));
        let l = k.cholesky_ref().expect("reference cholesky");
        let alpha = l.cholesky_solve(&yz).expect("reference solve");
        for (r, p) in preds.iter().enumerate() {
            let kz: f64 = rows
                .iter()
                .zip(&alpha)
                .map(|(t, a)| kernel(&rows[r], t) * a)
                .sum();
            let want = kz * y_std + y_mean;
            prop_assert_eq!(p.to_bits(), want.to_bits(), "row {}: {} vs {}", r, p, want);
        }
    }
}
