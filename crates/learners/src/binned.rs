//! Histogram binning for tree training — bin once, train everywhere.
//!
//! The exact CART splitter re-sorts every candidate feature at every node
//! (`O(n log n)` per feature per node). The histogram path instead
//! quantises each feature **once** into at most [`TreeConfig::max_bins`]
//! quantile bins ([`BinnedColumn`]: per-row bin codes plus the boundary
//! thresholds on the original value scale) and finds node splits with a
//! single `O(n_rows)` histogram-accumulation pass per feature plus an
//! `O(n_bins)` scan. A [`BinnedDataset`] is built one time per
//! (dataset, feature-set) and shared — across every tree of a forest,
//! every fold of a cross-validation, and (through the content-addressed
//! [`bin cache`](bin_cache_stats)) every downstream evaluation that sees
//! the same column content again.
//!
//! Bin-edge scheme: when a column has at most `max_bins` distinct values
//! it gets **one bin per distinct value** with boundaries at the midpoints
//! between adjacent distinct values — split enumeration is then exactly
//! the sorted scan's, so histogram training reproduces the exact path's
//! splits bit-for-bit on classification (Gini is computed from the same
//! integer counts). Wider columns get quantile cuts: boundary candidates
//! at ranks `b·n/max_bins`, dropped when they fall inside a run of equal
//! values, so duplicate-heavy columns spend their bin budget on the
//! values that actually vary.
//!
//! [`TreeConfig::max_bins`]: crate::tree::TreeConfig

use crate::error::{LearnError, Result};
use runtime::{fingerprint_values, Hasher128, ScoreCache, WorkerPool};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, OnceLock};
use tabular::{ChunkEncoding, ChunkedFrame};

/// How a tree enumerates candidate splits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SplitMethod {
    /// Sort every candidate feature at every node (the reference path).
    Exact,
    /// Quantile-bin every feature once, then find splits by histogram
    /// accumulation (LightGBM-style, with sibling subtraction).
    Histogram,
}

/// Default per-feature bin budget: 255 boundaries fit `u8` codes, which
/// keeps a 10k-row column's codes in ~10 KB and a node histogram scan in
/// L1 cache.
pub const DEFAULT_MAX_BINS: usize = 256;

/// Hard ceiling on `max_bins` (codes are at most `u16`).
pub const MAX_BINS_LIMIT: usize = 65_536;

/// Per-row bin codes, sized to the bin count.
#[derive(Debug, Clone, PartialEq)]
pub enum BinCodes {
    /// Up to 256 bins.
    U8(Vec<u8>),
    /// Up to 65 536 bins.
    U16(Vec<u16>),
}

impl BinCodes {
    /// Bin code of one row.
    #[inline]
    pub fn get(&self, row: usize) -> usize {
        match self {
            BinCodes::U8(c) => c[row] as usize,
            BinCodes::U16(c) => c[row] as usize,
        }
    }
}

/// One feature column quantised into bins.
///
/// Row `r` lies in bin `codes[r]`; boundary `b` (for `b` in
/// `0..n_bins()-1`) separates bins `..=b` from `b+1..` at
/// `threshold(b)` on the original value scale: every value encoded into
/// bins `..=b` satisfies `v <= threshold(b)` and every value in bins
/// `b+1..` satisfies `v > threshold(b)`, so a fitted split predicts
/// consistently from raw values.
#[derive(Debug, Clone, PartialEq)]
pub struct BinnedColumn {
    codes: BinCodes,
    /// Boundary thresholds, ascending; `len = n_bins - 1`.
    thresholds: Vec<f64>,
}

impl BinnedColumn {
    /// Quantile-bin one column into at most `max_bins` bins.
    pub fn build(values: &[f64], max_bins: usize) -> BinnedColumn {
        debug_assert!((2..=MAX_BINS_LIMIT).contains(&max_bins));
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let thresholds = thresholds_from_sorted(&sorted, max_bins);
        drop(sorted);
        let n_bins = thresholds.len() + 1;
        let encode = |v: f64| thresholds.partition_point(|&t| t < v);
        let codes = if n_bins <= 256 {
            BinCodes::U8(values.iter().map(|&v| encode(v) as u8).collect())
        } else {
            BinCodes::U16(values.iter().map(|&v| encode(v) as u16).collect())
        };
        BinnedColumn { codes, thresholds }
    }

    /// Quantile-bin a column given as compressed chunks, bit-identical to
    /// [`build`](Self::build) on the concatenated values.
    ///
    /// When every chunk is dictionary-coded and the merged distinct-value
    /// set fits the bin budget (the common case for the codes the PR-3
    /// scheme targets), thresholds come straight from the dictionaries and
    /// per-row codes are produced by remapping chunk dictionary codes
    /// through a per-chunk table — **no chunk is decoded to `f64`**. The
    /// remap is embarrassingly chunk-parallel; chunks fan out across the
    /// worker pool and are concatenated in chunk-index order, so output is
    /// identical at any thread count. High-cardinality columns fall back
    /// to decoding into pooled scratch and deferring to the flat builder.
    pub fn build_chunked(chunks: &[Arc<ChunkEncoding>], max_bins: usize) -> BinnedColumn {
        debug_assert!((2..=MAX_BINS_LIMIT).contains(&max_bins));
        let n_rows: usize = chunks.iter().map(|c| c.len()).sum();
        if chunks.iter().all(|c| c.dict().is_some()) {
            // Merge the exact distinct-value sets (total_cmp-sorted, bit
            // deduped) — this *is* the sorted distinct scan of the flat
            // builder, computed without touching per-row data.
            let mut merged: Vec<f64> = chunks
                .iter()
                .flat_map(|c| c.dict().expect("checked dict").iter().copied())
                .collect();
            merged.sort_by(f64::total_cmp);
            merged.dedup_by(|a, b| a.to_bits() == b.to_bits());
            // Distinct count with the flat builder's comparison (strict
            // `>`, so -0.0/0.0 merge and NaNs never count).
            let mut distinct = usize::from(!merged.is_empty());
            for i in 1..merged.len() {
                if merged[i] > merged[i - 1] {
                    distinct += 1;
                }
            }
            if distinct <= max_bins {
                telemetry::count("binned.chunked_fastpath", 1);
                let mut thresholds = Vec::new();
                for i in 1..merged.len() {
                    if merged[i] > merged[i - 1] {
                        thresholds.push(midpoint(merged[i - 1], merged[i]));
                    }
                }
                let n_bins = thresholds.len() + 1;
                let codes = if n_bins <= 256 {
                    BinCodes::U8(remap_chunks(chunks, &thresholds, n_rows, |bin| bin as u8))
                } else {
                    BinCodes::U16(remap_chunks(chunks, &thresholds, n_rows, |bin| bin as u16))
                };
                return BinnedColumn { codes, thresholds };
            }
        }
        // Decode fallback: same thresholds and codes as the flat builder,
        // but through a single n-sized pooled buffer — decode once, sort
        // that buffer *in place* for the thresholds, then produce codes by
        // a second scan over the (still encoded) chunks. The flat builder
        // holds the input and a sorted copy simultaneously; out-of-core
        // columns only ever hold one.
        telemetry::count("binned.chunked_decode_fallback", 1);
        let mut sorted = runtime::scratch_f64_with_capacity(n_rows);
        for c in chunks {
            c.fold_values((), |(), v| sorted.push(v));
        }
        sorted.sort_by(f64::total_cmp);
        let thresholds = thresholds_from_sorted(&sorted, max_bins);
        drop(sorted);
        let n_bins = thresholds.len() + 1;
        let encode = |v: f64| thresholds.partition_point(|&t| t < v);
        let codes = if n_bins <= 256 {
            let mut c8 = Vec::with_capacity(n_rows);
            for c in chunks {
                c.fold_values((), |(), v| c8.push(encode(v) as u8));
            }
            BinCodes::U8(c8)
        } else {
            let mut c16 = Vec::with_capacity(n_rows);
            for c in chunks {
                c.fold_values((), |(), v| c16.push(encode(v) as u16));
            }
            BinCodes::U16(c16)
        };
        BinnedColumn { codes, thresholds }
    }

    /// Number of bins (≥ 1; a constant column has exactly one).
    pub fn n_bins(&self) -> usize {
        self.thresholds.len() + 1
    }

    /// Value-scale threshold of boundary `b` (splitting bins `..=b` from
    /// the rest).
    pub fn threshold(&self, b: usize) -> f64 {
        self.thresholds[b]
    }

    /// The per-row bin codes.
    pub fn codes(&self) -> &BinCodes {
        &self.codes
    }
}

/// Bin boundaries from a `total_cmp`-sorted value slice: one bin per
/// distinct value when they fit the budget, else quantile cuts at ranks
/// `b·n/max_bins` (cuts inside a run of equal values are dropped rather
/// than duplicated, so heavy duplicates don't waste boundaries). Shared
/// by the flat and chunked builders so their thresholds cannot drift.
fn thresholds_from_sorted(sorted: &[f64], max_bins: usize) -> Vec<f64> {
    let n = sorted.len();
    let mut distinct = usize::from(n > 0);
    for i in 1..n {
        if sorted[i] > sorted[i - 1] {
            distinct += 1;
        }
    }
    let mut thresholds = Vec::new();
    if distinct <= max_bins {
        // One bin per distinct value: boundaries at every adjacent
        // distinct pair, exactly the cut points the sorted scan sees.
        for i in 1..n {
            if sorted[i] > sorted[i - 1] {
                thresholds.push(midpoint(sorted[i - 1], sorted[i]));
            }
        }
    } else {
        for b in 1..max_bins {
            let r = b * n / max_bins;
            let (lo, hi) = (sorted[r - 1], sorted[r]);
            if hi > lo {
                let t = midpoint(lo, hi);
                if thresholds.last() != Some(&t) {
                    thresholds.push(t);
                }
            }
        }
    }
    thresholds
}

fn midpoint(a: f64, b: f64) -> f64 {
    a + (b - a) / 2.0
}

/// Remap every chunk's dictionary codes to global bin codes without
/// decoding: one `O(dict)` `partition_point` table per chunk, then an
/// `O(rows)` table lookup. Fans chunks out across the worker pool when the
/// column is large; results merge in chunk-index order
/// (`WorkerPool::map` returns submission order), so N-thread ≡ 1-thread.
fn remap_chunks<C: Copy + Send>(
    chunks: &[Arc<ChunkEncoding>],
    thresholds: &[f64],
    n_rows: usize,
    to_code: impl Fn(usize) -> C + Copy + Sync,
) -> Vec<C> {
    let one = |c: &ChunkEncoding| -> Vec<C> {
        let dict = c.dict().expect("fast path requires dictionaries");
        let remap: Vec<C> = dict
            .iter()
            .map(|&v| to_code(thresholds.partition_point(|&t| t < v)))
            .collect();
        match c {
            ChunkEncoding::Dict8 { codes, .. } => {
                codes.iter().map(|&x| remap[x as usize]).collect()
            }
            ChunkEncoding::Dict16 { codes, .. } => {
                codes.iter().map(|&x| remap[x as usize]).collect()
            }
            ChunkEncoding::F64(_) => unreachable!("fast path requires dictionaries"),
        }
    };
    if hist_batch_parallel(chunks.len(), n_rows / chunks.len().max(1)) {
        let parts = WorkerPool::new().map(chunks.to_vec(), move |_ctx, c| one(&c));
        let mut out = Vec::with_capacity(n_rows);
        for p in parts {
            out.extend_from_slice(&p);
        }
        out
    } else {
        let mut out = Vec::with_capacity(n_rows);
        for c in chunks {
            out.extend_from_slice(&one(c));
        }
        out
    }
}

/// A whole feature matrix quantised column by column. Columns are
/// individually reference-counted so overlapping feature sets can share
/// them through the bin cache.
#[derive(Debug, Clone)]
pub struct BinnedDataset {
    columns: Vec<Arc<BinnedColumn>>,
    n_rows: usize,
}

impl BinnedDataset {
    /// Bin a column-major feature matrix, bypassing the cache.
    pub fn build(x: &[Vec<f64>], max_bins: usize) -> Result<BinnedDataset> {
        Self::from_slices(&x.iter().map(Vec::as_slice).collect::<Vec<_>>(), max_bins)
    }

    /// Bin column slices, bypassing the cache.
    pub fn from_slices(cols: &[&[f64]], max_bins: usize) -> Result<BinnedDataset> {
        validate_cols(cols, max_bins)?;
        Ok(BinnedDataset {
            columns: cols
                .iter()
                .map(|c| Arc::new(BinnedColumn::build(c, max_bins)))
                .collect(),
            n_rows: cols[0].len(),
        })
    }

    /// Bin a column-major feature matrix through the process-wide bin
    /// cache: a column whose (content, `max_bins`) was binned before — by
    /// any tree, forest, fold, or evaluation — is reused instead of
    /// re-binned.
    pub fn build_cached(x: &[Vec<f64>], max_bins: usize) -> Result<BinnedDataset> {
        Self::from_slices_cached(&x.iter().map(Vec::as_slice).collect::<Vec<_>>(), max_bins)
    }

    /// Cached variant of [`BinnedDataset::from_slices`].
    pub fn from_slices_cached(cols: &[&[f64]], max_bins: usize) -> Result<BinnedDataset> {
        validate_cols(cols, max_bins)?;
        let cache = bin_cache();
        let mut reused = 0u64;
        let columns = cols
            .iter()
            .map(|c| {
                let mut h = Hasher128::new();
                h.write_str("learners::BinnedColumn");
                h.write_u64(max_bins as u64);
                h.write_u128(fingerprint_values(c).0);
                let key = h.finish();
                if let Some(hit) = cache.get(key) {
                    reused += 1;
                    return hit;
                }
                let built = Arc::new(BinnedColumn::build(c, max_bins));
                cache.insert(key, Arc::clone(&built));
                built
            })
            .collect::<Vec<_>>();
        let built = columns.len() as u64 - reused;
        telemetry::count("binned.columns_reused", reused);
        telemetry::count("binned.columns_built", built);
        Ok(BinnedDataset {
            columns,
            n_rows: cols[0].len(),
        })
    }

    /// Bin every column of a chunked frame via
    /// [`BinnedColumn::build_chunked`] — codes feed the existing
    /// (feature-parallel) accumulators directly, without materializing the
    /// frame as `f64`. Bit-identical to binning the materialized frame.
    pub fn from_chunked(frame: &ChunkedFrame, max_bins: usize) -> Result<BinnedDataset> {
        if !(2..=MAX_BINS_LIMIT).contains(&max_bins) {
            return Err(LearnError::InvalidParam(format!(
                "max_bins must be in 2..={MAX_BINS_LIMIT}, got {max_bins}"
            )));
        }
        if frame.n_cols() == 0 || frame.n_rows() == 0 {
            return Err(LearnError::EmptyTrainingSet(
                "chunked binned dataset".into(),
            ));
        }
        let mut columns = Vec::with_capacity(frame.n_cols());
        for (i, col) in frame.columns().iter().enumerate() {
            let chunks: Vec<Arc<ChunkEncoding>> = (0..col.n_chunks())
                .map(|k| frame.chunk(i, k))
                .collect::<tabular::Result<_>>()
                .map_err(|e| LearnError::InvalidParam(format!("chunked frame: {e}")))?;
            columns.push(Arc::new(BinnedColumn::build_chunked(&chunks, max_bins)));
        }
        Ok(BinnedDataset {
            columns,
            n_rows: frame.n_rows(),
        })
    }

    /// Number of rows every column covers.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.columns.len()
    }

    /// One binned column.
    pub fn column(&self, f: usize) -> &BinnedColumn {
        &self.columns[f]
    }
}

fn validate_cols(cols: &[&[f64]], max_bins: usize) -> Result<()> {
    if !(2..=MAX_BINS_LIMIT).contains(&max_bins) {
        return Err(LearnError::InvalidParam(format!(
            "max_bins must be in 2..={MAX_BINS_LIMIT}, got {max_bins}"
        )));
    }
    if cols.is_empty() || cols[0].is_empty() {
        return Err(LearnError::EmptyTrainingSet("binned dataset".into()));
    }
    let n = cols[0].len();
    for c in cols {
        if c.len() != n {
            return Err(LearnError::InvalidParam(format!(
                "binned column length {} != {n}",
                c.len()
            )));
        }
    }
    Ok(())
}

/// Capacity of the process-wide bin cache. Entries are per-column
/// (codes + thresholds, roughly 1–2 bytes per row), so even at paper
/// scale the cache stays in the tens of megabytes.
pub const BIN_CACHE_CAPACITY: usize = 8_192;

fn bin_cache() -> &'static ScoreCache<Arc<BinnedColumn>> {
    static CACHE: OnceLock<ScoreCache<Arc<BinnedColumn>>> = OnceLock::new();
    CACHE.get_or_init(|| ScoreCache::new(BIN_CACHE_CAPACITY))
}

/// Counters of the process-wide bin cache (hits = columns served without
/// re-binning).
pub fn bin_cache_stats() -> runtime::CacheStats {
    bin_cache().stats()
}

// ---------------------------------------------------------------------
// Histogram accumulation — the inner loop of binned split finding.
// ---------------------------------------------------------------------

/// One bin of a regression histogram.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RegBin {
    /// Rows in the bin.
    pub n: u32,
    /// Sum of targets.
    pub sum: f64,
    /// Sum of squared targets.
    pub sumsq: f64,
}

/// Accumulate per-bin class counts over `rows` into `out`
/// (`out[bin * n_classes + class]`, cleared first). One `O(rows)` pass.
pub fn accumulate_class(
    col: &BinnedColumn,
    rows: &[usize],
    y: &[usize],
    n_classes: usize,
    out: &mut Vec<u32>,
) {
    out.clear();
    out.resize(col.n_bins() * n_classes, 0);
    match &col.codes {
        BinCodes::U8(codes) => {
            for &r in rows {
                out[codes[r] as usize * n_classes + y[r]] += 1;
            }
        }
        BinCodes::U16(codes) => {
            for &r in rows {
                out[codes[r] as usize * n_classes + y[r]] += 1;
            }
        }
    }
}

/// Accumulate per-bin regression stats over `rows` into `out`
/// (cleared first). One `O(rows)` pass.
pub fn accumulate_reg(col: &BinnedColumn, rows: &[usize], y: &[f64], out: &mut Vec<RegBin>) {
    out.clear();
    out.resize(col.n_bins(), RegBin::default());
    let mut add = |bin: usize, v: f64| {
        let b = &mut out[bin];
        b.n += 1;
        b.sum += v;
        b.sumsq += v * v;
    };
    match &col.codes {
        BinCodes::U8(codes) => {
            for &r in rows {
                add(codes[r] as usize, y[r]);
            }
        }
        BinCodes::U16(codes) => {
            for &r in rows {
                add(codes[r] as usize, y[r]);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Feature-parallel accumulation — LightGBM-style feature partitioning.
//
// Each feature's node histogram is built by exactly one worker-pool task
// scanning `rows` in ascending order, so every per-feature histogram is
// bit-identical to a serial `accumulate_*` call; `WorkerPool::map`
// returns results in submission order, so the merged Vec is in fixed
// feature-index order regardless of which thread finished first.
// N-thread output ≡ 1-thread output, bitwise (DESIGN.md §13).
// ---------------------------------------------------------------------

/// Minimum `rows × features` product before a histogram batch is worth
/// shipping to the worker pool (below this, task overhead dominates the
/// `O(rows)` scans).
pub const HIST_PARALLEL_GRAIN: usize = 65_536;

/// Whether a histogram batch of `n_features` columns over `n_rows` rows
/// should fan out across the worker pool.
fn hist_batch_parallel(n_features: usize, n_rows: usize) -> bool {
    runtime::global_threads() != 1
        && n_features >= 2
        && n_rows.saturating_mul(n_features) >= HIST_PARALLEL_GRAIN
}

/// Accumulate one class histogram per column, partitioning features
/// across the worker pool when the batch is large enough. Output order is
/// `cols` order and every histogram is bit-identical to a serial
/// [`accumulate_class`] call at any thread count.
pub fn accumulate_class_parallel(
    cols: &[&BinnedColumn],
    rows: &[usize],
    y: &[usize],
    n_classes: usize,
) -> Vec<Vec<u32>> {
    let one = |col: &BinnedColumn| {
        let mut h = Vec::new();
        accumulate_class(col, rows, y, n_classes, &mut h);
        h
    };
    if hist_batch_parallel(cols.len(), rows.len()) {
        telemetry::count("binned.hist_parallel_batches", 1);
        WorkerPool::new().map(cols.to_vec(), |_ctx, col| one(col))
    } else {
        cols.iter().map(|col| one(col)).collect()
    }
}

/// Accumulate one regression histogram per column, partitioning features
/// across the worker pool when the batch is large enough. Output order is
/// `cols` order; per-feature sums are accumulated in ascending row order
/// by a single task, so every histogram is bit-identical to a serial
/// [`accumulate_reg`] call at any thread count.
pub fn accumulate_reg_parallel(
    cols: &[&BinnedColumn],
    rows: &[usize],
    y: &[f64],
) -> Vec<Vec<RegBin>> {
    let one = |col: &BinnedColumn| {
        let mut h = Vec::new();
        accumulate_reg(col, rows, y, &mut h);
        h
    };
    if hist_batch_parallel(cols.len(), rows.len()) {
        telemetry::count("binned.hist_parallel_batches", 1);
        WorkerPool::new().map(cols.to_vec(), |_ctx, col| one(col))
    } else {
        cols.iter().map(|col| one(col)).collect()
    }
}

/// Sibling subtraction: the right child's histogram is the parent's minus
/// the left child's, element-wise — `O(n_bins)` instead of `O(rows)`.
/// Counts are integers, so the subtracted histogram is bit-identical to
/// re-accumulation.
pub fn subtract_class(parent: &[u32], left: &[u32]) -> Vec<u32> {
    debug_assert_eq!(parent.len(), left.len());
    parent.iter().zip(left).map(|(&p, &l)| p - l).collect()
}

/// Sibling subtraction for regression histograms. Counts subtract
/// exactly; the float sums are subtracted (deterministically, but not
/// necessarily bit-identical to re-accumulation).
pub fn subtract_reg(parent: &[RegBin], left: &[RegBin]) -> Vec<RegBin> {
    debug_assert_eq!(parent.len(), left.len());
    parent
        .iter()
        .zip(left)
        .map(|(p, l)| RegBin {
            n: p.n - l.n,
            sum: p.sum - l.sum,
            sumsq: p.sumsq - l.sumsq,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes_of(col: &BinnedColumn, n: usize) -> Vec<usize> {
        (0..n).map(|r| col.codes().get(r)).collect()
    }

    #[test]
    fn constant_column_is_one_bin() {
        let col = BinnedColumn::build(&[3.5; 40], 256);
        assert_eq!(col.n_bins(), 1);
        assert_eq!(codes_of(&col, 40), vec![0; 40]);
    }

    #[test]
    fn few_distinct_values_get_one_bin_each() {
        let vals = [2.0, 1.0, 2.0, 3.0, 1.0, 3.0, 3.0];
        let col = BinnedColumn::build(&vals, 256);
        assert_eq!(col.n_bins(), 3);
        assert_eq!(col.threshold(0), 1.5);
        assert_eq!(col.threshold(1), 2.5);
        assert_eq!(codes_of(&col, 7), vec![1, 0, 1, 2, 0, 2, 2]);
    }

    #[test]
    fn boundary_thresholds_separate_bins_on_the_value_scale() {
        // The defining invariant: v <= threshold(b) ⇔ code(v) <= b.
        let vals: Vec<f64> = (0..1000).map(|i| ((i * 37) % 251) as f64 * 0.1).collect();
        let col = BinnedColumn::build(&vals, 64);
        assert!(col.n_bins() <= 64);
        for (r, &v) in vals.iter().enumerate() {
            let code = col.codes().get(r);
            for b in 0..col.n_bins() - 1 {
                assert_eq!(
                    v <= col.threshold(b),
                    code <= b,
                    "row {r} value {v} code {code} boundary {b}"
                );
            }
        }
    }

    #[test]
    fn duplicate_heavy_column_spends_bins_on_varying_values() {
        // 90% zeros + 100 distinct positives, budget 16: the zero run
        // must collapse into one bin, not eat quantile cuts.
        let mut vals = vec![0.0; 900];
        vals.extend((1..=100).map(|i| i as f64));
        let col = BinnedColumn::build(&vals, 16);
        assert!(col.n_bins() > 1, "degenerated to a single bin");
        assert!(col.n_bins() <= 16);
        // All zeros share bin 0.
        assert!((0..900).all(|r| col.codes().get(r) == 0));
        // The positive tail is spread over the remaining bins.
        let tail: std::collections::BTreeSet<usize> =
            (900..1000).map(|r| col.codes().get(r)).collect();
        assert!(tail.len() > 1, "tail collapsed into one bin");
    }

    #[test]
    fn wide_column_respects_bin_budget_and_ordering() {
        let vals: Vec<f64> = (0..5000).map(|i| (i as f64 * 0.7).sin() * 100.0).collect();
        let col = BinnedColumn::build(&vals, 256);
        assert!(col.n_bins() <= 256);
        assert!(col.n_bins() > 200, "continuous column should use budget");
        // Codes are monotone in value.
        let mut pairs: Vec<(f64, usize)> = vals
            .iter()
            .enumerate()
            .map(|(r, &v)| (v, col.codes().get(r)))
            .collect();
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in pairs.windows(2) {
            assert!(w[0].1 <= w[1].1, "codes must be monotone in value");
        }
    }

    #[test]
    fn u16_codes_kick_in_past_256_bins() {
        let vals: Vec<f64> = (0..2000).map(|i| i as f64).collect();
        let col = BinnedColumn::build(&vals, 1024);
        assert!(col.n_bins() > 256);
        assert!(matches!(col.codes(), BinCodes::U16(_)));
        let small = BinnedColumn::build(&vals, 256);
        assert!(matches!(small.codes(), BinCodes::U8(_)));
    }

    #[test]
    fn sibling_subtraction_identity_class() {
        let vals: Vec<f64> = (0..200).map(|i| ((i * 13) % 17) as f64).collect();
        let y: Vec<usize> = (0..200).map(|i| (i * 7) % 3).collect();
        let col = BinnedColumn::build(&vals, 8);
        let parent: Vec<usize> = (0..200).collect();
        let (left, right): (Vec<usize>, Vec<usize>) = parent.iter().partition(|&&r| r % 3 != 0);
        let mut hp = Vec::new();
        let mut hl = Vec::new();
        let mut hr = Vec::new();
        accumulate_class(&col, &parent, &y, 3, &mut hp);
        accumulate_class(&col, &left, &y, 3, &mut hl);
        accumulate_class(&col, &right, &y, 3, &mut hr);
        assert_eq!(subtract_class(&hp, &hl), hr, "parent − left == right");
    }

    #[test]
    fn sibling_subtraction_identity_reg() {
        let vals: Vec<f64> = (0..100).map(|i| ((i * 31) % 23) as f64).collect();
        let y: Vec<f64> = (0..100).map(|i| (i as f64).sqrt()).collect();
        let col = BinnedColumn::build(&vals, 6);
        let parent: Vec<usize> = (0..100).collect();
        let (left, right): (Vec<usize>, Vec<usize>) = parent.iter().partition(|&&r| r < 40);
        let mut hp = Vec::new();
        let mut hl = Vec::new();
        let mut hr = Vec::new();
        accumulate_reg(&col, &parent, &y, &mut hp);
        accumulate_reg(&col, &left, &y, &mut hl);
        accumulate_reg(&col, &right, &y, &mut hr);
        for (s, r) in subtract_reg(&hp, &hl).iter().zip(&hr) {
            assert_eq!(s.n, r.n);
            assert!((s.sum - r.sum).abs() < 1e-9);
            assert!((s.sumsq - r.sumsq).abs() < 1e-6);
        }
    }

    #[test]
    fn batched_accumulation_matches_per_column_serial() {
        let a: Vec<f64> = (0..300).map(|i| ((i * 13) % 29) as f64).collect();
        let b: Vec<f64> = (0..300).map(|i| ((i * 7) % 11) as f64).collect();
        let yc: Vec<usize> = (0..300).map(|i| (i * 5) % 3).collect();
        let yr: Vec<f64> = (0..300).map(|i| (i as f64).cos()).collect();
        let ca = BinnedColumn::build(&a, 32);
        let cb = BinnedColumn::build(&b, 32);
        let rows: Vec<usize> = (0..300).filter(|r| r % 4 != 1).collect();
        let batch_c = accumulate_class_parallel(&[&ca, &cb], &rows, &yc, 3);
        let batch_r = accumulate_reg_parallel(&[&ca, &cb], &rows, &yr);
        for (f, col) in [&ca, &cb].into_iter().enumerate() {
            let mut hc = Vec::new();
            accumulate_class(col, &rows, &yc, 3, &mut hc);
            assert_eq!(batch_c[f], hc, "class feature {f}");
            let mut hr = Vec::new();
            accumulate_reg(col, &rows, &yr, &mut hr);
            assert_eq!(batch_r[f], hr, "reg feature {f}");
        }
    }

    #[test]
    fn histograms_count_bootstrap_duplicates() {
        let vals = [1.0, 2.0, 3.0];
        let y = [0usize, 1, 1];
        let col = BinnedColumn::build(&vals, 8);
        let mut h = Vec::new();
        accumulate_class(&col, &[0, 0, 2], &y, 2, &mut h);
        assert_eq!(h[0], 2, "row 0 drawn twice must count twice");
        assert_eq!(h[2 * 2 + 1], 1);
    }

    #[test]
    fn cached_build_reuses_identical_columns() {
        let a: Vec<f64> = (0..64).map(|i| (i as f64 * 1.7).cos()).collect();
        let b: Vec<f64> = (0..64).map(|i| (i as f64 * 2.3).sin()).collect();
        let before = bin_cache_stats();
        let d1 = BinnedDataset::from_slices_cached(&[&a, &b], 32).unwrap();
        let d2 = BinnedDataset::from_slices_cached(&[&a, &b], 32).unwrap();
        let after = bin_cache_stats();
        assert!(
            after.hits >= before.hits + 2,
            "second build must reuse both columns"
        );
        for f in 0..2 {
            assert_eq!(d1.column(f), d2.column(f));
        }
        // Different bin budget addresses different entries.
        let d3 = BinnedDataset::from_slices_cached(&[&a, &b], 16).unwrap();
        assert!(d3.column(0).n_bins() <= 16);
    }

    #[test]
    fn build_rejects_bad_inputs() {
        assert!(BinnedDataset::build(&[], 256).is_err());
        assert!(BinnedDataset::build(&[vec![]], 256).is_err());
        assert!(BinnedDataset::build(&[vec![1.0], vec![1.0, 2.0]], 256).is_err());
        assert!(BinnedDataset::build(&[vec![1.0]], 1).is_err());
        assert!(BinnedDataset::build(&[vec![1.0]], MAX_BINS_LIMIT + 1).is_err());
    }

    fn encode_in_chunks(values: &[f64], chunk_rows: usize) -> Vec<Arc<ChunkEncoding>> {
        values
            .chunks(chunk_rows)
            .map(|c| Arc::new(ChunkEncoding::encode(c)))
            .collect()
    }

    fn assert_chunked_matches_flat(values: &[f64], chunk_rows: usize, max_bins: usize) {
        let flat = BinnedColumn::build(values, max_bins);
        let chunks = encode_in_chunks(values, chunk_rows);
        let chunked = BinnedColumn::build_chunked(&chunks, max_bins);
        assert_eq!(flat.n_bins(), chunked.n_bins(), "bin counts must match");
        for b in 0..flat.n_bins().saturating_sub(1) {
            assert_eq!(
                flat.threshold(b).to_bits(),
                chunked.threshold(b).to_bits(),
                "threshold {b} must be bit-identical"
            );
        }
        assert_eq!(
            codes_of(&flat, values.len()),
            codes_of(&chunked, values.len()),
            "codes must be identical"
        );
    }

    #[test]
    fn chunked_build_matches_flat_on_dict_fast_path() {
        // Few distinct values per chunk -> every chunk is dictionary-encoded
        // and the merged-dict fast path runs end to end.
        let values: Vec<f64> = (0..700).map(|i| ((i * 13) % 29) as f64).collect();
        assert_chunked_matches_flat(&values, 128, 64);
        // Including negative zero and repeated extremes.
        let weird: Vec<f64> = (0..300)
            .map(|i| match i % 5 {
                0 => -0.0,
                1 => 0.0,
                2 => f64::MAX,
                3 => -3.25,
                _ => (i % 7) as f64,
            })
            .collect();
        assert_chunked_matches_flat(&weird, 64, 16);
    }

    #[test]
    fn chunked_build_matches_flat_on_decode_fallback() {
        // Nearly-unique values force the F64 chunk encoding, exercising the
        // decode-and-flat-build fallback.
        let values: Vec<f64> = (0..600).map(|i| (i as f64 * 1.37).sin() * 1e3).collect();
        assert_chunked_matches_flat(&values, 128, 255);
        // And when distinct count exceeds the bin budget even with dict
        // chunks, the fallback must quantile-bin identically.
        let coarse: Vec<f64> = (0..900).map(|i| ((i * 31) % 511) as f64).collect();
        assert_chunked_matches_flat(&coarse, 256, 32);
    }

    #[test]
    fn chunked_dataset_matches_flat_dataset() {
        let a: Vec<f64> = (0..500).map(|i| ((i * 17) % 23) as f64).collect();
        let b: Vec<f64> = (0..500).map(|i| (i as f64 * 0.91).cos()).collect();
        let df = tabular::DataFrame::new(
            "chunk-parity",
            vec![
                tabular::Column::new("a", a.clone()),
                tabular::Column::new("b", b.clone()),
            ],
            tabular::Label::Reg((0..500).map(|i| i as f64).collect()),
        )
        .unwrap();
        let opts = tabular::ChunkOptions::default().with_chunk_rows(128);
        let cf = ChunkedFrame::from_dataframe(&df, opts, Box::new(tabular::InMemoryStore::new()))
            .unwrap();
        let flat = BinnedDataset::build(&[a, b], 64).unwrap();
        let chunked = BinnedDataset::from_chunked(&cf, 64).unwrap();
        assert_eq!(flat.n_rows(), chunked.n_rows());
        for f in 0..2 {
            assert_eq!(flat.column(f), chunked.column(f), "column {f}");
        }
        assert!(BinnedDataset::from_chunked(&cf, 1).is_err());
    }
}
