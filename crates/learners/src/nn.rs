//! Minimal neural-network building blocks shared by the MLP and tabular
//! ResNet learners: dense layers with manual backprop, ReLU, softmax
//! cross-entropy, and the Adam optimiser (the paper trains its networks
//! with Adam, learning rate 0.01).

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A fully-connected layer `y = W x + b` with gradient accumulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    /// Weights, `w[out][in]`.
    pub w: Vec<Vec<f64>>,
    /// Biases, one per output.
    pub b: Vec<f64>,
    /// Accumulated weight gradients.
    pub gw: Vec<Vec<f64>>,
    /// Accumulated bias gradients.
    pub gb: Vec<f64>,
}

impl Dense {
    /// He-style initialisation scaled by fan-in.
    pub fn new(n_in: usize, n_out: usize, rng: &mut StdRng) -> Self {
        let scale = (2.0 / n_in.max(1) as f64).sqrt();
        let w = (0..n_out)
            .map(|_| (0..n_in).map(|_| rng.gen_range(-scale..scale)).collect())
            .collect();
        Self {
            w,
            b: vec![0.0; n_out],
            gw: vec![vec![0.0; n_in]; n_out],
            gb: vec![0.0; n_out],
        }
    }

    /// Output dimension.
    pub fn n_out(&self) -> usize {
        self.b.len()
    }

    /// Input dimension.
    pub fn n_in(&self) -> usize {
        self.w.first().map_or(0, Vec::len)
    }

    /// Forward pass for one sample. Each output's inner product runs
    /// through the pinned SIMD lane tree ([`simd::dot`]) — the same
    /// reduction the flat batched kernels use, which is what keeps the
    /// scalar and batched training backends bit-identical.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        self.w
            .iter()
            .zip(&self.b)
            .map(|(row, b)| b + simd::dot(row, x))
            .collect()
    }

    /// Backward pass: accumulate parameter gradients for (x, dy) and return
    /// the gradient with respect to the input. Per-output updates are the
    /// elementwise [`simd::axpy`] (one multiply, one add per element, any
    /// tier — bitwise identical to the plain loops they replace).
    pub fn backward(&mut self, x: &[f64], dy: &[f64]) -> Vec<f64> {
        let mut dx = vec![0.0; self.n_in()];
        for (o, &g) in dy.iter().enumerate() {
            self.gb[o] += g;
            simd::axpy(&mut self.gw[o], g, x);
            simd::axpy(&mut dx, g, &self.w[o]);
        }
        dx
    }

    /// Zero the accumulated gradients.
    pub fn zero_grad(&mut self) {
        for row in &mut self.gw {
            row.iter_mut().for_each(|g| *g = 0.0);
        }
        self.gb.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Flattened parameter count (weights + biases).
    pub fn n_params(&self) -> usize {
        self.n_in() * self.n_out() + self.n_out()
    }
}

/// ReLU forward.
pub fn relu(x: &[f64]) -> Vec<f64> {
    x.iter().map(|&v| v.max(0.0)).collect()
}

/// ReLU backward: gate `dy` by the sign of the pre-activation.
pub fn relu_backward(pre: &[f64], dy: &[f64]) -> Vec<f64> {
    pre.iter()
        .zip(dy)
        .map(|(&p, &g)| if p > 0.0 { g } else { 0.0 })
        .collect()
}

/// Numerically-stable softmax.
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Softmax cross-entropy: returns (loss, dlogits) for one sample.
pub fn softmax_cross_entropy(logits: &[f64], target: usize) -> (f64, Vec<f64>) {
    let p = softmax(logits);
    let loss = -p[target].max(1e-15).ln();
    let mut d = p;
    d[target] -= 1.0;
    (loss, d)
}

/// Allocation-free [`softmax`]: write the distribution into `out`.
/// Same arithmetic (max-shift, exp, single-pass sum, divide), so the
/// values are bit-identical to the allocating version.
pub fn softmax_into(logits: &[f64], out: &mut [f64]) {
    debug_assert_eq!(logits.len(), out.len());
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    for (o, &l) in out.iter_mut().zip(logits) {
        *o = (l - max).exp();
    }
    let sum: f64 = out.iter().sum();
    for o in out.iter_mut() {
        *o /= sum;
    }
}

/// Allocation-free softmax cross-entropy gradient: write `dlogits` into
/// `d` (the loss value itself is not needed by the training drivers).
/// Bit-identical to the gradient returned by [`softmax_cross_entropy`].
pub fn softmax_cross_entropy_into(logits: &[f64], target: usize, d: &mut [f64]) {
    softmax_into(logits, d);
    d[target] -= 1.0;
}

/// Mean-squared-error loss for one scalar output: returns (loss, dy).
pub fn mse_loss(pred: f64, target: f64) -> (f64, f64) {
    let diff = pred - target;
    (diff * diff, 2.0 * diff)
}

/// Adam optimiser state over a flat parameter vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Epsilon for numerical stability.
    pub eps: f64,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// New optimiser for `n_params` parameters (paper default lr = 0.01).
    pub fn new(n_params: usize, lr: f64) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: vec![0.0; n_params],
            v: vec![0.0; n_params],
            t: 0,
        }
    }

    /// One Adam step: update `params` in place from `grads`.
    /// `params` and `grads` must both have the length given at construction.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        debug_assert_eq!(params.len(), self.m.len());
        debug_assert_eq!(grads.len(), self.m.len());
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * grads[i];
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * grads[i] * grads[i];
            let mhat = self.m[i] / b1t;
            let vhat = self.v[i] / b2t;
            params[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }
}

/// Flatten a set of dense layers' parameters into one vector (for Adam).
pub fn collect_params(layers: &[&Dense]) -> Vec<f64> {
    let mut out = Vec::new();
    for layer in layers {
        for row in &layer.w {
            out.extend_from_slice(row);
        }
        out.extend_from_slice(&layer.b);
    }
    out
}

/// Flatten gradients in the same order as [`collect_params`].
pub fn collect_grads(layers: &[&Dense]) -> Vec<f64> {
    let mut out = Vec::new();
    for layer in layers {
        for row in &layer.gw {
            out.extend_from_slice(row);
        }
        out.extend_from_slice(&layer.gb);
    }
    out
}

/// Scatter a flat parameter vector back into the layers, inverse of
/// [`collect_params`].
pub fn scatter_params(layers: &mut [&mut Dense], flat: &[f64]) {
    let mut k = 0usize;
    for layer in layers.iter_mut() {
        for row in &mut layer.w {
            for w in row.iter_mut() {
                *w = flat[k];
                k += 1;
            }
        }
        for b in &mut layer.b {
            *b = flat[k];
            k += 1;
        }
    }
    debug_assert_eq!(k, flat.len());
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn dense_forward_known_values() {
        let mut d = Dense::new(2, 1, &mut rng());
        d.w = vec![vec![2.0, -1.0]];
        d.b = vec![0.5];
        assert_eq!(d.forward(&[3.0, 4.0]), vec![2.5]);
    }

    #[test]
    fn dense_backward_gradient_check() {
        // Finite-difference check of dL/dw for L = y² with y = Wx + b.
        let mut d = Dense::new(3, 2, &mut rng());
        let x = [0.3, -0.7, 1.1];
        let y = d.forward(&x);
        let dy: Vec<f64> = y.iter().map(|v| 2.0 * v).collect(); // dL/dy
        d.zero_grad();
        let dx = d.backward(&x, &dy);

        let eps = 1e-6;
        let loss = |d: &Dense, x: &[f64]| -> f64 { d.forward(x).iter().map(|v| v * v).sum() };
        // Check one weight and one input grad numerically.
        let base = loss(&d, &x);
        let mut d2 = d.clone();
        d2.w[1][2] += eps;
        let num_gw = (loss(&d2, &x) - base) / eps;
        assert!(
            (num_gw - d.gw[1][2]).abs() < 1e-4,
            "{num_gw} vs {}",
            d.gw[1][2]
        );

        let mut x2 = x;
        x2[0] += eps;
        let num_gx = (loss(&d, &x2) - base) / eps;
        assert!((num_gx - dx[0]).abs() < 1e-4, "{num_gx} vs {}", dx[0]);
    }

    #[test]
    fn relu_gates_gradient() {
        let pre = [1.0, -1.0, 0.0];
        assert_eq!(relu(&pre), vec![1.0, 0.0, 0.0]);
        assert_eq!(relu_backward(&pre, &[5.0, 5.0, 5.0]), vec![5.0, 0.0, 0.0]);
    }

    #[test]
    fn softmax_is_distribution() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
        // Stability under large logits.
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cross_entropy_gradient_sums_to_zero() {
        let (loss, d) = softmax_cross_entropy(&[0.2, -0.1, 0.5], 1);
        assert!(loss > 0.0);
        assert!(d.iter().sum::<f64>().abs() < 1e-12);
        assert!(d[1] < 0.0); // target logit pushed up
    }

    #[test]
    fn into_variants_match_allocating_versions_bitwise() {
        let logits = [0.2, -0.1, 0.5, 3.0];
        let mut buf = [0.0; 4];
        softmax_into(&logits, &mut buf);
        for (a, b) in softmax(&logits).iter().zip(&buf) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        softmax_cross_entropy_into(&logits, 2, &mut buf);
        let (_, d) = softmax_cross_entropy(&logits, 2);
        for (a, b) in d.iter().zip(&buf) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn adam_minimises_quadratic() {
        // minimise (p - 3)²
        let mut p = vec![0.0];
        let mut opt = Adam::new(1, 0.1);
        for _ in 0..500 {
            let g = vec![2.0 * (p[0] - 3.0)];
            opt.step(&mut p, &g);
        }
        assert!((p[0] - 3.0).abs() < 1e-3, "p = {}", p[0]);
    }

    #[test]
    fn param_round_trip() {
        let mut a = Dense::new(3, 2, &mut rng());
        let mut b = Dense::new(2, 1, &mut rng());
        let flat = collect_params(&[&a, &b]);
        assert_eq!(flat.len(), a.n_params() + b.n_params());
        let mut flat2 = flat.clone();
        for v in &mut flat2 {
            *v += 1.0;
        }
        scatter_params(&mut [&mut a, &mut b], &flat2);
        let flat3 = collect_params(&[&a, &b]);
        for (x, y) in flat.iter().zip(&flat3) {
            assert!((y - x - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn mse_loss_gradient() {
        let (l, g) = mse_loss(2.0, 5.0);
        assert_eq!(l, 9.0);
        assert_eq!(g, -6.0);
    }
}
