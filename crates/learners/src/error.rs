//! Error types for the `learners` crate.

use std::fmt;
use tabular::TabularError;

/// Errors produced by model fitting and evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum LearnError {
    /// Training data was empty or otherwise unusable.
    EmptyTrainingSet(String),
    /// Feature dimensionality at predict time differs from fit time.
    DimensionMismatch {
        /// Feature count the model was fitted with.
        fitted: usize,
        /// Feature count supplied at prediction time.
        got: usize,
    },
    /// The model has not been fitted yet.
    NotFitted(&'static str),
    /// A hyper-parameter was outside its valid domain.
    InvalidParam(String),
    /// Numerical failure (e.g. Cholesky of a non-PD kernel matrix).
    Numerical(String),
    /// Propagated data-frame error.
    Tabular(TabularError),
}

impl fmt::Display for LearnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LearnError::EmptyTrainingSet(what) => write!(f, "empty training set: {what}"),
            LearnError::DimensionMismatch { fitted, got } => {
                write!(
                    f,
                    "dimension mismatch: fitted with {fitted} features, got {got}"
                )
            }
            LearnError::NotFitted(model) => write!(f, "{model} has not been fitted"),
            LearnError::InvalidParam(msg) => write!(f, "invalid parameter: {msg}"),
            LearnError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
            LearnError::Tabular(e) => write!(f, "tabular error: {e}"),
        }
    }
}

impl std::error::Error for LearnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LearnError::Tabular(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TabularError> for LearnError {
    fn from(e: TabularError) -> Self {
        LearnError::Tabular(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, LearnError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(LearnError::DimensionMismatch { fitted: 3, got: 5 }
            .to_string()
            .contains("3"));
        assert!(LearnError::NotFitted("RandomForest")
            .to_string()
            .contains("RandomForest"));
    }

    #[test]
    fn tabular_error_propagates() {
        let e: LearnError = TabularError::Empty("x".into()).into();
        assert!(matches!(e, LearnError::Tabular(_)));
    }
}
