//! Small dense linear-algebra helpers (row-major square matrices) backing
//! the Gaussian-process regressor. Only what the GP needs: Cholesky
//! factorisation and triangular solves.
//!
//! The factorisation and solves index the flat row-major storage through
//! row slices (one bounds check per row, contiguous inner loops) instead
//! of per-element [`SquareMatrix::get`]/[`SquareMatrix::set`] calls. The
//! per-element path is kept as [`SquareMatrix::cholesky_ref`], the scalar
//! testing reference the parity suite and `perf_nn` compare against.
//!
//! Every inner-product accumulation here — the Cholesky row updates, the
//! forward substitution, and the free [`dot`]/[`sq_dist`] helpers — runs
//! through the `simd` crate's pinned reduction tree (DESIGN.md §13). The
//! reference path gathers its operands per-element but reduces through
//! the *portable* tier of the same tree, so fast ≡ reference stays
//! bitwise while both sides share the one documented summation order.
//! The backward substitution walks a strided column, so it keeps its
//! sequential scalar loop (`O(n²)`, not worth a gather).

use crate::error::{LearnError, Result};

/// A dense row-major square matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct SquareMatrix {
    n: usize,
    data: Vec<f64>,
}

impl SquareMatrix {
    /// Zero matrix of side `n`.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Build from a row-major data vector (must have length n²).
    pub fn from_vec(n: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != n * n {
            return Err(LearnError::InvalidParam(format!(
                "matrix data length {} != {n}²",
                data.len()
            )));
        }
        Ok(Self { n, data })
    }

    /// Side length.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
    }

    /// Row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Row `i` as a mutable contiguous slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.n..(i + 1) * self.n]
    }

    /// In-place add `v` to the diagonal (jitter / noise term).
    pub fn add_diagonal(&mut self, v: f64) {
        for i in 0..self.n {
            self.data[i * self.n + i] += v;
        }
    }

    /// Lower-triangular Cholesky factor `L` with `L Lᵀ = A`.
    /// Fails when the matrix is not (numerically) positive definite.
    ///
    /// Row-slice implementation: row `i` of `L` is built left to right
    /// while the finished rows `j < i` are read as contiguous slices, so
    /// the `O(n³)` inner loop runs on slices instead of `get`/`set`
    /// index arithmetic. The operation order per element is identical to
    /// [`SquareMatrix::cholesky_ref`], so the factors are bit-identical.
    pub fn cholesky(&self) -> Result<SquareMatrix> {
        let n = self.n;
        let mut l = SquareMatrix::zeros(n);
        for i in 0..n {
            let (above, current) = l.data.split_at_mut(i * n);
            let row_i = &mut current[..n];
            let src_i = &self.data[i * n..(i + 1) * n];
            for j in 0..i {
                let row_j = &above[j * n..(j + 1) * n];
                let sum = src_i[j] - simd::dot(&row_i[..j], &row_j[..j]);
                row_i[j] = sum / row_j[j];
            }
            let sum = src_i[i] - simd::dot(&row_i[..i], &row_i[..i]);
            if sum <= 0.0 {
                return Err(LearnError::Numerical(format!(
                    "cholesky failed: non-positive pivot {sum:.3e} at {i}"
                )));
            }
            row_i[i] = sum.sqrt();
        }
        Ok(l)
    }

    /// Per-element `get` Cholesky — the testing reference for
    /// [`SquareMatrix::cholesky`] (no row slicing, no dispatch). Kept for
    /// the parity suite and the `perf_nn` benchmark; production paths use
    /// the row-slice factorisation. Operands are gathered element by
    /// element, then reduced through the *portable* tier of the pinned
    /// tree ([`simd::dot_portable`]), so this stays bit-identical to the
    /// fast path whichever ISA tier the fast path dispatches to.
    pub fn cholesky_ref(&self) -> Result<SquareMatrix> {
        let n = self.n;
        let mut l = SquareMatrix::zeros(n);
        let mut li = Vec::with_capacity(n);
        let mut lj = Vec::with_capacity(n);
        for i in 0..n {
            for j in 0..=i {
                li.clear();
                lj.clear();
                for k in 0..j {
                    li.push(l.get(i, k));
                    lj.push(l.get(j, k));
                }
                let sum = self.get(i, j) - simd::dot_portable(&li, &lj);
                if i == j {
                    if sum <= 0.0 {
                        return Err(LearnError::Numerical(format!(
                            "cholesky failed: non-positive pivot {sum:.3e} at {i}"
                        )));
                    }
                    l.set(i, j, sum.sqrt());
                } else {
                    l.set(i, j, sum / l.get(j, j));
                }
            }
        }
        Ok(l)
    }

    /// Cholesky with escalating diagonal jitter for numerically non-PD
    /// matrices (e.g. RBF kernel matrices with duplicated rows where the
    /// noise term alone is too small).
    ///
    /// Attempt 0 factors `self` as-is; each retry clones `self`, adds
    /// `initial_jitter × 10^attempt` to the diagonal, and tries again, up
    /// to `max_attempts` retries (so the largest jitter ever added is
    /// `initial_jitter × 10^(max_attempts-1)`). Returns the factor and
    /// the jitter that was actually added (`0.0` when none was needed);
    /// the error of the last attempt is propagated when every retry
    /// fails.
    pub fn cholesky_jittered(
        &self,
        initial_jitter: f64,
        max_attempts: usize,
    ) -> Result<(SquareMatrix, f64)> {
        let mut last_err = match self.cholesky() {
            Ok(l) => return Ok((l, 0.0)),
            Err(e) => e,
        };
        if initial_jitter <= 0.0 {
            return Err(last_err);
        }
        let mut jitter = initial_jitter;
        for _ in 0..max_attempts {
            let mut k = self.clone();
            k.add_diagonal(jitter);
            match k.cholesky() {
                Ok(l) => return Ok((l, jitter)),
                Err(e) => last_err = e,
            }
            jitter *= 10.0;
        }
        Err(last_err)
    }

    /// Solve `L x = b` for lower-triangular `L` (forward substitution).
    pub fn solve_lower(&self, b: &[f64]) -> Result<Vec<f64>> {
        self.check_rhs(b)?;
        let n = self.n;
        let mut x = vec![0.0; n];
        for i in 0..n {
            let row_i = &self.data[i * n..(i + 1) * n];
            let sum = b[i] - simd::dot(&row_i[..i], &x[..i]);
            let d = row_i[i];
            if d.abs() < 1e-300 {
                return Err(LearnError::Numerical("singular triangular solve".into()));
            }
            x[i] = sum / d;
        }
        Ok(x)
    }

    /// Solve `Lᵀ x = b` for lower-triangular `L` (backward substitution).
    /// `Lᵀ`'s row `i` is `L`'s column `i`, so the inner loop walks the
    /// rows below `i` as slices and reads their `i`-th element.
    pub fn solve_lower_transpose(&self, b: &[f64]) -> Result<Vec<f64>> {
        self.check_rhs(b)?;
        let n = self.n;
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = b[i];
            for (row_k, xk) in self.data.chunks_exact(n).zip(&x).skip(i + 1) {
                sum -= row_k[i] * xk;
            }
            let d = self.data[i * n + i];
            if d.abs() < 1e-300 {
                return Err(LearnError::Numerical("singular triangular solve".into()));
            }
            x[i] = sum / d;
        }
        Ok(x)
    }

    /// Solve `A x = b` given that `self` is the Cholesky factor `L` of `A`.
    pub fn cholesky_solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let y = self.solve_lower(b)?;
        self.solve_lower_transpose(&y)
    }

    fn check_rhs(&self, b: &[f64]) -> Result<()> {
        if b.len() != self.n {
            return Err(LearnError::InvalidParam(format!(
                "rhs length {} != matrix side {}",
                b.len(),
                self.n
            )));
        }
        Ok(())
    }
}

/// Dot product of two equal-length slices, reduced through the pinned
/// lane tree (re-exported from the `simd` crate so every learner sums
/// in the one documented order).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    simd::dot(a, b)
}

/// Squared Euclidean distance between two equal-length slices, reduced
/// through the pinned lane tree.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    simd::sq_dist(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cholesky_of_known_matrix() {
        // A = [[4, 2], [2, 3]] → L = [[2, 0], [1, sqrt(2)]]
        let a = SquareMatrix::from_vec(2, vec![4.0, 2.0, 2.0, 3.0]).unwrap();
        let l = a.cholesky().unwrap();
        assert!((l.get(0, 0) - 2.0).abs() < 1e-12);
        assert!((l.get(1, 0) - 1.0).abs() < 1e-12);
        assert!((l.get(1, 1) - 2.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(l.get(0, 1), 0.0);
    }

    #[test]
    fn cholesky_solve_recovers_solution() {
        let a =
            SquareMatrix::from_vec(3, vec![6.0, 2.0, 1.0, 2.0, 5.0, 2.0, 1.0, 2.0, 4.0]).unwrap();
        let l = a.cholesky().unwrap();
        let x_true = [1.0, -2.0, 3.0];
        // b = A x
        let b: Vec<f64> = (0..3)
            .map(|i| (0..3).map(|j| a.get(i, j) * x_true[j]).sum())
            .collect();
        let x = l.cholesky_solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10, "{x:?}");
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = SquareMatrix::from_vec(2, vec![1.0, 2.0, 2.0, 1.0]).unwrap(); // eigenvalues 3, -1
        assert!(a.cholesky().is_err());
        assert!(a.cholesky_ref().is_err());
    }

    #[test]
    fn cholesky_matches_reference_bitwise() {
        // Random-ish SPD matrix: A = B Bᵀ + n·I built from a fixed pattern.
        let n = 9;
        let mut b = SquareMatrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                b.set(i, j, ((i * 31 + j * 17) % 13) as f64 / 13.0 - 0.4);
            }
        }
        let mut a = SquareMatrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                a.set(i, j, dot(b.row(i), b.row(j)));
            }
        }
        a.add_diagonal(n as f64);
        let fast = a.cholesky().unwrap();
        let reference = a.cholesky_ref().unwrap();
        for (x, y) in fast.data.iter().zip(&reference.data) {
            assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y}");
        }
    }

    #[test]
    fn jitter_fixes_semidefinite() {
        let mut a = SquareMatrix::from_vec(2, vec![1.0, 1.0, 1.0, 1.0]).unwrap();
        assert!(a.cholesky().is_err());
        a.add_diagonal(1e-6);
        assert!(a.cholesky().is_ok());
    }

    #[test]
    fn jitter_escalation_recovers_near_singular_matrix() {
        // Rank-1 Gram matrix of a duplicated row: exactly singular, so the
        // plain factorisation fails and small jitters may round away; the
        // escalating retry must land on a jitter that factors.
        let v = [1.0, 2.0, 3.0, 4.0];
        let n = v.len();
        let mut a = SquareMatrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                a.set(i, j, v[i] * v[j] * 1e8);
            }
        }
        assert!(a.cholesky().is_err());
        let (l, jitter) = a.cholesky_jittered(1e-10, 12).unwrap();
        assert!(jitter > 0.0, "singular matrix needs some jitter");
        // L Lᵀ ≈ A + jitter·I on the diagonal scale.
        let recon = dot(l.row(n - 1), l.row(n - 1));
        let expect = a.get(n - 1, n - 1) + jitter;
        assert!(
            (recon - expect).abs() <= 1e-6 * expect.abs(),
            "{recon} vs {expect}"
        );
        // Already-PD matrices report zero jitter.
        let pd = SquareMatrix::from_vec(2, vec![4.0, 2.0, 2.0, 3.0]).unwrap();
        let (_, j0) = pd.cholesky_jittered(1e-10, 4).unwrap();
        assert_eq!(j0, 0.0);
        // A bounded number of attempts must eventually give up.
        let indef = SquareMatrix::from_vec(2, vec![1.0, 2.0, 2.0, 1.0]).unwrap();
        assert!(indef.cholesky_jittered(1e-300, 2).is_err());
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(SquareMatrix::from_vec(2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn solve_checks_rhs_length() {
        let l = SquareMatrix::from_vec(2, vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        assert!(l.solve_lower(&[1.0]).is_err());
    }

    #[test]
    fn triangular_solves_match_reference_loops() {
        let n = 7;
        let mut l = SquareMatrix::zeros(n);
        for i in 0..n {
            for j in 0..=i {
                l.set(i, j, ((i * 7 + j * 3) % 11) as f64 / 11.0 + 0.1);
            }
        }
        let b: Vec<f64> = (0..n).map(|i| (i as f64 - 2.5) / 3.0).collect();
        // Reference forward substitution: per-element gather, portable
        // tier of the pinned reduction tree.
        let mut xf = vec![0.0; n];
        for i in 0..n {
            let li: Vec<f64> = (0..i).map(|k| l.get(i, k)).collect();
            let sum = b[i] - simd::dot_portable(&li, &xf[..i]);
            xf[i] = sum / l.get(i, i);
        }
        let got = l.solve_lower(&b).unwrap();
        for (x, y) in got.iter().zip(&xf) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // Reference backward substitution on the transpose.
        let mut xb = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = b[i];
            for (k, &xk) in xb.iter().enumerate().skip(i + 1) {
                sum -= l.get(k, i) * xk;
            }
            xb[i] = sum / l.get(i, i);
        }
        let got = l.solve_lower_transpose(&b).unwrap();
        for (x, y) in got.iter().zip(&xb) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn dot_and_sq_dist() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }
}
