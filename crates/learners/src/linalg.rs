//! Small dense linear-algebra helpers (row-major square matrices) backing
//! the Gaussian-process regressor. Only what the GP needs: Cholesky
//! factorisation and triangular solves.

use crate::error::{LearnError, Result};

/// A dense row-major square matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct SquareMatrix {
    n: usize,
    data: Vec<f64>,
}

impl SquareMatrix {
    /// Zero matrix of side `n`.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Build from a row-major data vector (must have length n²).
    pub fn from_vec(n: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != n * n {
            return Err(LearnError::InvalidParam(format!(
                "matrix data length {} != {n}²",
                data.len()
            )));
        }
        Ok(Self { n, data })
    }

    /// Side length.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
    }

    /// In-place add `v` to the diagonal (jitter / noise term).
    pub fn add_diagonal(&mut self, v: f64) {
        for i in 0..self.n {
            self.data[i * self.n + i] += v;
        }
    }

    /// Lower-triangular Cholesky factor `L` with `L Lᵀ = A`.
    /// Fails when the matrix is not (numerically) positive definite.
    pub fn cholesky(&self) -> Result<SquareMatrix> {
        let n = self.n;
        let mut l = SquareMatrix::zeros(n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self.get(i, j);
                for k in 0..j {
                    sum -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LearnError::Numerical(format!(
                            "cholesky failed: non-positive pivot {sum:.3e} at {i}"
                        )));
                    }
                    l.set(i, j, sum.sqrt());
                } else {
                    l.set(i, j, sum / l.get(j, j));
                }
            }
        }
        Ok(l)
    }

    /// Solve `L x = b` for lower-triangular `L` (forward substitution).
    #[allow(clippy::needless_range_loop)] // triangular index math is clearer as loops
    pub fn solve_lower(&self, b: &[f64]) -> Result<Vec<f64>> {
        self.check_rhs(b)?;
        let n = self.n;
        let mut x = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.get(i, k) * x[k];
            }
            let d = self.get(i, i);
            if d.abs() < 1e-300 {
                return Err(LearnError::Numerical("singular triangular solve".into()));
            }
            x[i] = sum / d;
        }
        Ok(x)
    }

    /// Solve `Lᵀ x = b` for lower-triangular `L` (backward substitution).
    #[allow(clippy::needless_range_loop)] // triangular index math is clearer as loops
    pub fn solve_lower_transpose(&self, b: &[f64]) -> Result<Vec<f64>> {
        self.check_rhs(b)?;
        let n = self.n;
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = b[i];
            for k in i + 1..n {
                sum -= self.get(k, i) * x[k];
            }
            let d = self.get(i, i);
            if d.abs() < 1e-300 {
                return Err(LearnError::Numerical("singular triangular solve".into()));
            }
            x[i] = sum / d;
        }
        Ok(x)
    }

    /// Solve `A x = b` given that `self` is the Cholesky factor `L` of `A`.
    pub fn cholesky_solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let y = self.solve_lower(b)?;
        self.solve_lower_transpose(&y)
    }

    fn check_rhs(&self, b: &[f64]) -> Result<()> {
        if b.len() != self.n {
            return Err(LearnError::InvalidParam(format!(
                "rhs length {} != matrix side {}",
                b.len(),
                self.n
            )));
        }
        Ok(())
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean distance between two equal-length slices.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cholesky_of_known_matrix() {
        // A = [[4, 2], [2, 3]] → L = [[2, 0], [1, sqrt(2)]]
        let a = SquareMatrix::from_vec(2, vec![4.0, 2.0, 2.0, 3.0]).unwrap();
        let l = a.cholesky().unwrap();
        assert!((l.get(0, 0) - 2.0).abs() < 1e-12);
        assert!((l.get(1, 0) - 1.0).abs() < 1e-12);
        assert!((l.get(1, 1) - 2.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(l.get(0, 1), 0.0);
    }

    #[test]
    fn cholesky_solve_recovers_solution() {
        let a =
            SquareMatrix::from_vec(3, vec![6.0, 2.0, 1.0, 2.0, 5.0, 2.0, 1.0, 2.0, 4.0]).unwrap();
        let l = a.cholesky().unwrap();
        let x_true = [1.0, -2.0, 3.0];
        // b = A x
        let b: Vec<f64> = (0..3)
            .map(|i| (0..3).map(|j| a.get(i, j) * x_true[j]).sum())
            .collect();
        let x = l.cholesky_solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10, "{x:?}");
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = SquareMatrix::from_vec(2, vec![1.0, 2.0, 2.0, 1.0]).unwrap(); // eigenvalues 3, -1
        assert!(a.cholesky().is_err());
    }

    #[test]
    fn jitter_fixes_semidefinite() {
        let mut a = SquareMatrix::from_vec(2, vec![1.0, 1.0, 1.0, 1.0]).unwrap();
        assert!(a.cholesky().is_err());
        a.add_diagonal(1e-6);
        assert!(a.cholesky().is_ok());
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(SquareMatrix::from_vec(2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn solve_checks_rhs_length() {
        let l = SquareMatrix::from_vec(2, vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        assert!(l.solve_lower(&[1.0]).is_err());
    }

    #[test]
    fn dot_and_sq_dist() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }
}
