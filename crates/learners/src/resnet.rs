//! Tabular ResNet — the RTDL-style baseline (`RTDL_N` in the paper's
//! Table III). A linear stem projects features to a hidden width, residual
//! blocks `z ← z + W₂ relu(W₁ z)` refine the representation, and a linear
//! head produces logits (classification) or a scalar (regression).
//!
//! Per the paper, `RTDL_N` trains the ResNet with a softmax head and then
//! *re-heads* it with a Random Forest on the penultimate representation;
//! [`ResNetClassifier::embed`] exposes that representation.

use crate::error::{LearnError, Result};
use crate::nn::{
    collect_grads, collect_params, mse_loss, relu, relu_backward, scatter_params,
    softmax_cross_entropy, Adam, Dense,
};
use crate::preprocess::{to_row_major, Standardizer};
use crate::tree::argmax;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// ResNet hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResNetConfig {
    /// Hidden representation width.
    pub width: usize,
    /// Number of residual blocks.
    pub n_blocks: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Init / shuffle seed.
    pub seed: u64,
}

impl Default for ResNetConfig {
    fn default() -> Self {
        Self {
            width: 32,
            n_blocks: 2,
            epochs: 40,
            lr: 0.01,
            batch_size: 32,
            seed: 0,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Block {
    w1: Dense,
    w2: Dense,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ResNetCore {
    stem: Dense,
    blocks: Vec<Block>,
    head: Dense,
}

/// Per-sample forward cache needed by backprop.
struct Cache {
    z_states: Vec<Vec<f64>>, // z after stem and after each block
    pre1s: Vec<Vec<f64>>,    // W1 z pre-activations per block
}

impl ResNetCore {
    fn new(n_in: usize, n_out: usize, cfg: &ResNetConfig, rng: &mut StdRng) -> Self {
        let stem = Dense::new(n_in, cfg.width, rng);
        let blocks = (0..cfg.n_blocks)
            .map(|_| Block {
                w1: Dense::new(cfg.width, cfg.width, rng),
                w2: Dense::new(cfg.width, cfg.width, rng),
            })
            .collect();
        let head = Dense::new(cfg.width, n_out, rng);
        Self { stem, blocks, head }
    }

    fn forward(&self, x: &[f64]) -> (Cache, Vec<f64>) {
        let mut z = self.stem.forward(x);
        let mut z_states = vec![z.clone()];
        let mut pre1s = Vec::with_capacity(self.blocks.len());
        for block in &self.blocks {
            let pre1 = block.w1.forward(&z);
            let h = relu(&pre1);
            let delta = block.w2.forward(&h);
            for (zi, di) in z.iter_mut().zip(&delta) {
                *zi += di;
            }
            pre1s.push(pre1);
            z_states.push(z.clone());
        }
        let out = self.head.forward(&z);
        (Cache { z_states, pre1s }, out)
    }

    /// The penultimate representation (input to the head).
    fn embed_one(&self, x: &[f64]) -> Vec<f64> {
        let (cache, _) = self.forward(x);
        cache
            .z_states
            .last()
            .cloned()
            .expect("forward always produces at least the stem state")
    }

    fn backward(&mut self, x: &[f64], cache: &Cache, dout: &[f64]) {
        let z_final = cache.z_states.last().expect("nonempty states");
        let mut dz = self.head.backward(z_final, dout);
        for (b, block) in self.blocks.iter_mut().enumerate().rev() {
            let z_in = &cache.z_states[b];
            let pre1 = &cache.pre1s[b];
            let h = relu(pre1);
            // Residual: dz flows both straight through and via the branch.
            let dh = block.w2.backward(&h, &dz);
            let dpre1 = relu_backward(pre1, &dh);
            let dz_branch = block.w1.backward(z_in, &dpre1);
            for (d, db) in dz.iter_mut().zip(dz_branch) {
                *d += db;
            }
        }
        let _ = self.stem.backward(x, &dz);
    }

    fn layers(&self) -> Vec<&Dense> {
        let mut layers = vec![&self.stem];
        for b in &self.blocks {
            layers.push(&b.w1);
            layers.push(&b.w2);
        }
        layers.push(&self.head);
        layers
    }

    fn layers_mut(&mut self) -> Vec<&mut Dense> {
        let mut layers: Vec<&mut Dense> = vec![&mut self.stem];
        for b in &mut self.blocks {
            layers.push(&mut b.w1);
            layers.push(&mut b.w2);
        }
        layers.push(&mut self.head);
        layers
    }

    fn zero_grad(&mut self) {
        for layer in self.layers_mut() {
            layer.zero_grad();
        }
    }

    fn n_params(&self) -> usize {
        self.layers().iter().map(|l| l.n_params()).sum()
    }
}

fn train_core(
    core: &mut ResNetCore,
    rows: &[Vec<f64>],
    cfg: &ResNetConfig,
    mut loss_grad: impl FnMut(&[f64], usize) -> (f64, Vec<f64>),
) {
    let mut opt = Adam::new(core.n_params(), cfg.lr);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xA5A5_5A5A);
    let mut order: Vec<usize> = (0..rows.len()).collect();
    for _ in 0..cfg.epochs {
        order.shuffle(&mut rng);
        for chunk in order.chunks(cfg.batch_size.max(1)) {
            core.zero_grad();
            for &i in chunk {
                let (cache, out) = core.forward(&rows[i]);
                let (_, dout) = loss_grad(&out, i);
                core.backward(&rows[i], &cache, &dout);
            }
            let scale = 1.0 / chunk.len() as f64;
            let mut params = collect_params(&core.layers());
            let mut grads = collect_grads(&core.layers());
            grads.iter_mut().for_each(|g| *g *= scale);
            opt.step(&mut params, &grads);
            let mut layers = core.layers_mut();
            scatter_params(&mut layers, &params);
        }
    }
}

fn validate(x: &[Vec<f64>], n_labels: usize) -> Result<()> {
    if x.is_empty() || n_labels == 0 {
        return Err(LearnError::EmptyTrainingSet("resnet".into()));
    }
    for col in x {
        if col.len() != n_labels {
            return Err(LearnError::InvalidParam(
                "feature/label length mismatch".into(),
            ));
        }
    }
    Ok(())
}

/// Tabular ResNet classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResNetClassifier {
    /// Hyper-parameters used at fit time.
    pub config: ResNetConfig,
    core: Option<ResNetCore>,
    scaler: Option<Standardizer>,
    n_classes: usize,
}

impl ResNetClassifier {
    /// New unfitted classifier.
    pub fn new(config: ResNetConfig) -> Self {
        Self {
            config,
            core: None,
            scaler: None,
            n_classes: 0,
        }
    }

    /// Fit with a softmax head.
    pub fn fit(&mut self, x: &[Vec<f64>], y: &[usize], n_classes: usize) -> Result<()> {
        validate(x, y.len())?;
        if n_classes < 2 {
            return Err(LearnError::InvalidParam("need at least 2 classes".into()));
        }
        let scaler = Standardizer::fit(x);
        let rows = to_row_major(&scaler.transform(x));
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut core = ResNetCore::new(x.len(), n_classes, &self.config, &mut rng);
        train_core(&mut core, &rows, &self.config, |out, i| {
            softmax_cross_entropy(out, y[i])
        });
        self.core = Some(core);
        self.scaler = Some(scaler);
        self.n_classes = n_classes;
        Ok(())
    }

    fn parts(&self) -> Result<(&ResNetCore, &Standardizer)> {
        match (&self.core, &self.scaler) {
            (Some(c), Some(s)) => Ok((c, s)),
            _ => Err(LearnError::NotFitted("ResNetClassifier")),
        }
    }

    /// Softmax-head class predictions.
    pub fn predict(&self, x: &[Vec<f64>]) -> Result<Vec<usize>> {
        let (core, scaler) = self.parts()?;
        if x.len() != scaler.n_features() {
            return Err(LearnError::DimensionMismatch {
                fitted: scaler.n_features(),
                got: x.len(),
            });
        }
        let rows = to_row_major(&scaler.transform(x));
        Ok(rows
            .iter()
            .map(|row| {
                let (_, out) = core.forward(row);
                argmax(&out)
            })
            .collect())
    }

    /// Penultimate representations, **column-major** (one column per hidden
    /// unit) so they can be fed directly to the Random Forest for the
    /// paper's `RTDL_N` re-heading.
    pub fn embed(&self, x: &[Vec<f64>]) -> Result<Vec<Vec<f64>>> {
        let (core, scaler) = self.parts()?;
        if x.len() != scaler.n_features() {
            return Err(LearnError::DimensionMismatch {
                fitted: scaler.n_features(),
                got: x.len(),
            });
        }
        let rows = to_row_major(&scaler.transform(x));
        let width = self.config.width;
        let mut cols = vec![Vec::with_capacity(rows.len()); width];
        for row in &rows {
            let z = core.embed_one(row);
            for (c, v) in cols.iter_mut().zip(z) {
                c.push(v);
            }
        }
        Ok(cols)
    }
}

/// Tabular ResNet regressor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResNetRegressor {
    /// Hyper-parameters used at fit time.
    pub config: ResNetConfig,
    core: Option<ResNetCore>,
    scaler: Option<Standardizer>,
    y_mean: f64,
    y_std: f64,
}

impl ResNetRegressor {
    /// New unfitted regressor.
    pub fn new(config: ResNetConfig) -> Self {
        Self {
            config,
            core: None,
            scaler: None,
            y_mean: 0.0,
            y_std: 1.0,
        }
    }

    /// Fit with an MSE head over standardised targets.
    pub fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<()> {
        validate(x, y.len())?;
        let scaler = Standardizer::fit(x);
        let rows = to_row_major(&scaler.transform(x));
        self.y_mean = y.iter().sum::<f64>() / y.len() as f64;
        let var = y.iter().map(|t| (t - self.y_mean).powi(2)).sum::<f64>() / y.len() as f64;
        self.y_std = var.sqrt().max(1e-12);
        let yz: Vec<f64> = y.iter().map(|t| (t - self.y_mean) / self.y_std).collect();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut core = ResNetCore::new(x.len(), 1, &self.config, &mut rng);
        train_core(&mut core, &rows, &self.config, |out, i| {
            let (l, g) = mse_loss(out[0], yz[i]);
            (l, vec![g])
        });
        self.core = Some(core);
        self.scaler = Some(scaler);
        Ok(())
    }

    /// Target predictions.
    pub fn predict(&self, x: &[Vec<f64>]) -> Result<Vec<f64>> {
        let (core, scaler) = match (&self.core, &self.scaler) {
            (Some(c), Some(s)) => (c, s),
            _ => return Err(LearnError::NotFitted("ResNetRegressor")),
        };
        if x.len() != scaler.n_features() {
            return Err(LearnError::DimensionMismatch {
                fitted: scaler.n_features(),
                got: x.len(),
            });
        }
        let rows = to_row_major(&scaler.transform(x));
        Ok(rows
            .iter()
            .map(|row| {
                let (_, out) = core.forward(row);
                out[0] * self.y_std + self.y_mean
            })
            .collect())
    }

    /// Penultimate representations, column-major (see
    /// [`ResNetClassifier::embed`]).
    pub fn embed(&self, x: &[Vec<f64>]) -> Result<Vec<Vec<f64>>> {
        let (core, scaler) = match (&self.core, &self.scaler) {
            (Some(c), Some(s)) => (c, s),
            _ => return Err(LearnError::NotFitted("ResNetRegressor")),
        };
        if x.len() != scaler.n_features() {
            return Err(LearnError::DimensionMismatch {
                fitted: scaler.n_features(),
                got: x.len(),
            });
        }
        let rows = to_row_major(&scaler.transform(x));
        let width = self.config.width;
        let mut cols = vec![Vec::with_capacity(rows.len()); width];
        for row in &rows {
            let z = core.embed_one(row);
            for (c, v) in cols.iter_mut().zip(z) {
                c.push(v);
            }
        }
        Ok(cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{accuracy, one_minus_rae};
    use rand::Rng;

    fn blobs(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = Vec::new();
        let mut b = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let c = i % 2;
            let center = if c == 0 { -1.5 } else { 1.5 };
            a.push(center + rng.gen_range(-1.0..1.0));
            b.push(center + rng.gen_range(-1.0..1.0));
            y.push(c);
        }
        (vec![a, b], y)
    }

    #[test]
    fn classifier_separates_blobs() {
        let (x, y) = blobs(200, 1);
        let mut m = ResNetClassifier::new(ResNetConfig {
            epochs: 30,
            ..Default::default()
        });
        m.fit(&x, &y, 2).unwrap();
        let acc = accuracy(&y, &m.predict(&x).unwrap()).unwrap();
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn embed_shape_is_column_major_width() {
        let (x, y) = blobs(50, 2);
        let cfg = ResNetConfig {
            epochs: 3,
            width: 16,
            ..Default::default()
        };
        let mut m = ResNetClassifier::new(cfg);
        m.fit(&x, &y, 2).unwrap();
        let e = m.embed(&x).unwrap();
        assert_eq!(e.len(), 16);
        assert_eq!(e[0].len(), 50);
    }

    #[test]
    fn regressor_fits_linear_function() {
        let xs: Vec<f64> = (0..150).map(|i| i as f64 / 25.0).collect();
        let y: Vec<f64> = xs.iter().map(|v| 3.0 * v - 1.0).collect();
        let mut m = ResNetRegressor::new(ResNetConfig {
            epochs: 60,
            ..Default::default()
        });
        m.fit(std::slice::from_ref(&xs), &y).unwrap();
        let score = one_minus_rae(&y, &m.predict(&[xs]).unwrap()).unwrap();
        assert!(score > 0.9, "1-rae {score}");
    }

    #[test]
    fn backward_gradient_check() {
        // Numerically check dLoss/dparam through a residual block.
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = ResNetConfig {
            width: 4,
            n_blocks: 1,
            ..Default::default()
        };
        let mut core = ResNetCore::new(3, 2, &cfg, &mut rng);
        let x = [0.5, -1.0, 0.25];
        let target = 1usize;
        let loss_of = |core: &ResNetCore| {
            let (_, out) = core.forward(&x);
            softmax_cross_entropy(&out, target).0
        };
        core.zero_grad();
        let (cache, out) = core.forward(&x);
        let (_, dout) = softmax_cross_entropy(&out, target);
        core.backward(&x, &cache, &dout);
        let analytic = collect_grads(&core.layers());
        let mut params = collect_params(&core.layers());
        let eps = 1e-6;
        // Spot-check a few parameters spread across layers.
        for &idx in &[0usize, 5, params.len() / 2, params.len() - 1] {
            let orig = params[idx];
            params[idx] = orig + eps;
            {
                let mut layers = core.layers_mut();
                scatter_params(&mut layers, &params);
            }
            let lp = loss_of(&core);
            params[idx] = orig - eps;
            {
                let mut layers = core.layers_mut();
                scatter_params(&mut layers, &params);
            }
            let lm = loss_of(&core);
            params[idx] = orig;
            {
                let mut layers = core.layers_mut();
                scatter_params(&mut layers, &params);
            }
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - analytic[idx]).abs() < 1e-4,
                "param {idx}: numeric {numeric} vs analytic {}",
                analytic[idx]
            );
        }
    }

    #[test]
    fn errors_on_bad_input() {
        let m = ResNetClassifier::new(ResNetConfig::default());
        assert!(m.predict(&[vec![1.0]]).is_err());
        assert!(m.embed(&[vec![1.0]]).is_err());
        let mut m = ResNetClassifier::new(ResNetConfig::default());
        assert!(m.fit(&[], &[], 2).is_err());
    }
}
