//! Tabular ResNet — the RTDL-style baseline (`RTDL_N` in the paper's
//! Table III). A linear stem projects features to a hidden width, residual
//! blocks `z ← z + W₂ relu(W₁ z)` refine the representation, and a linear
//! head produces logits (classification) or a scalar (regression).
//!
//! Per the paper, `RTDL_N` trains the ResNet with a softmax head and then
//! *re-heads* it with a Random Forest on the penultimate representation;
//! [`ResNetClassifier::embed`] exposes that representation (computed
//! batched over the whole matrix).
//!
//! Training and inference run through the flat batched kernels in
//! [`crate::dense`] (shared driver with the MLP); set
//! [`ResNetConfig::backend`] to [`NnBackend::Scalar`] for the per-sample
//! testing reference — the two are bit-identical.

use crate::dense::{
    embed_rows, forward_rows, train_flat, validate_columns, FlatNet, Mat, NnBackend, Topology,
    TrainSpec,
};
use crate::error::{LearnError, Result};
use crate::nn::softmax_cross_entropy_into;
use crate::preprocess::Standardizer;
use crate::tree::argmax;
use serde::{Deserialize, Serialize};

/// Seed stream for the minibatch shuffle RNG (distinct from the MLP's,
/// and stable across refactors for reproducibility).
const SHUFFLE_XOR: u64 = 0xA5A5_5A5A;

/// ResNet hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResNetConfig {
    /// Hidden representation width.
    pub width: usize,
    /// Number of residual blocks.
    pub n_blocks: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Init / shuffle seed.
    pub seed: u64,
    /// Kernel implementation (batched by default; scalar is the
    /// bit-identical per-sample testing reference).
    pub backend: NnBackend,
}

impl Default for ResNetConfig {
    fn default() -> Self {
        Self {
            width: 32,
            n_blocks: 2,
            epochs: 40,
            lr: 0.01,
            batch_size: 32,
            seed: 0,
            backend: NnBackend::Batched,
        }
    }
}

impl ResNetConfig {
    fn topology(&self) -> Topology {
        Topology::ResNet {
            width: self.width,
            n_blocks: self.n_blocks,
        }
    }

    fn train_spec(&self) -> TrainSpec {
        TrainSpec {
            epochs: self.epochs,
            lr: self.lr,
            batch_size: self.batch_size,
            seed: self.seed,
            shuffle_xor: SHUFFLE_XOR,
        }
    }
}

/// Column-major view of a row-major embedding matrix (one column per
/// hidden unit), the layout the Random Forest re-heading consumes.
fn to_columns(e: &Mat) -> Vec<Vec<f64>> {
    let mut cols = vec![Vec::with_capacity(e.rows()); e.cols()];
    for r in 0..e.rows() {
        for (col, v) in cols.iter_mut().zip(e.row(r)) {
            col.push(*v);
        }
    }
    cols
}

/// Tabular ResNet classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResNetClassifier {
    /// Hyper-parameters used at fit time.
    pub config: ResNetConfig,
    core: Option<FlatNet>,
    scaler: Option<Standardizer>,
    n_classes: usize,
}

impl ResNetClassifier {
    /// New unfitted classifier.
    pub fn new(config: ResNetConfig) -> Self {
        Self {
            config,
            core: None,
            scaler: None,
            n_classes: 0,
        }
    }

    /// Fit with a softmax head.
    pub fn fit(&mut self, x: &[Vec<f64>], y: &[usize], n_classes: usize) -> Result<()> {
        validate_columns(x, y.len(), "resnet")?;
        if n_classes < 2 {
            return Err(LearnError::InvalidParam("need at least 2 classes".into()));
        }
        let scaler = Standardizer::fit(x);
        let rows = Mat::from_columns(&scaler.transform(x));
        let core = train_flat(
            self.config.topology(),
            x.len(),
            n_classes,
            &rows,
            &self.config.train_spec(),
            self.config.backend,
            &|out, i, d| softmax_cross_entropy_into(out, y[i], d),
        );
        self.core = Some(core);
        self.scaler = Some(scaler);
        self.n_classes = n_classes;
        Ok(())
    }

    fn parts(&self) -> Result<(&FlatNet, &Standardizer)> {
        match (&self.core, &self.scaler) {
            (Some(c), Some(s)) => Ok((c, s)),
            _ => Err(LearnError::NotFitted("ResNetClassifier")),
        }
    }

    fn check_features(&self, scaler: &Standardizer, x: &[Vec<f64>]) -> Result<()> {
        if x.len() != scaler.n_features() {
            return Err(LearnError::DimensionMismatch {
                fitted: scaler.n_features(),
                got: x.len(),
            });
        }
        Ok(())
    }

    /// Softmax-head class predictions.
    pub fn predict(&self, x: &[Vec<f64>]) -> Result<Vec<usize>> {
        let (core, scaler) = self.parts()?;
        self.check_features(scaler, x)?;
        let rows = Mat::from_columns(&scaler.transform(x));
        let outs = forward_rows(core, &rows);
        Ok((0..outs.rows()).map(|r| argmax(outs.row(r))).collect())
    }

    /// Penultimate representations, **column-major** (one column per hidden
    /// unit) so they can be fed directly to the Random Forest for the
    /// paper's `RTDL_N` re-heading. Computed with the batched kernels
    /// over the whole matrix (the old path re-ran a per-sample forward
    /// per row).
    pub fn embed(&self, x: &[Vec<f64>]) -> Result<Vec<Vec<f64>>> {
        let (core, scaler) = self.parts()?;
        self.check_features(scaler, x)?;
        let rows = Mat::from_columns(&scaler.transform(x));
        Ok(to_columns(&embed_rows(core, &rows)))
    }

    /// The trained flat parameter slab (testing / benchmarking hook for
    /// bit-level parity assertions across backends and thread counts).
    pub fn trained_params(&self) -> Option<&[f64]> {
        self.core.as_ref().map(FlatNet::params)
    }
}

/// Tabular ResNet regressor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResNetRegressor {
    /// Hyper-parameters used at fit time.
    pub config: ResNetConfig,
    core: Option<FlatNet>,
    scaler: Option<Standardizer>,
    y_mean: f64,
    y_std: f64,
}

impl ResNetRegressor {
    /// New unfitted regressor.
    pub fn new(config: ResNetConfig) -> Self {
        Self {
            config,
            core: None,
            scaler: None,
            y_mean: 0.0,
            y_std: 1.0,
        }
    }

    /// Fit with an MSE head over standardised targets.
    pub fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<()> {
        validate_columns(x, y.len(), "resnet")?;
        let scaler = Standardizer::fit(x);
        let rows = Mat::from_columns(&scaler.transform(x));
        self.y_mean = y.iter().sum::<f64>() / y.len() as f64;
        let var = y.iter().map(|t| (t - self.y_mean).powi(2)).sum::<f64>() / y.len() as f64;
        self.y_std = var.sqrt().max(1e-12);
        let yz: Vec<f64> = y.iter().map(|t| (t - self.y_mean) / self.y_std).collect();
        let core = train_flat(
            self.config.topology(),
            x.len(),
            1,
            &rows,
            &self.config.train_spec(),
            self.config.backend,
            &|out, i, d| d[0] = 2.0 * (out[0] - yz[i]),
        );
        self.core = Some(core);
        self.scaler = Some(scaler);
        Ok(())
    }

    fn parts(&self) -> Result<(&FlatNet, &Standardizer)> {
        match (&self.core, &self.scaler) {
            (Some(c), Some(s)) => Ok((c, s)),
            _ => Err(LearnError::NotFitted("ResNetRegressor")),
        }
    }

    /// Target predictions.
    pub fn predict(&self, x: &[Vec<f64>]) -> Result<Vec<f64>> {
        let (core, scaler) = self.parts()?;
        if x.len() != scaler.n_features() {
            return Err(LearnError::DimensionMismatch {
                fitted: scaler.n_features(),
                got: x.len(),
            });
        }
        let rows = Mat::from_columns(&scaler.transform(x));
        let outs = forward_rows(core, &rows);
        Ok((0..outs.rows())
            .map(|r| outs.row(r)[0] * self.y_std + self.y_mean)
            .collect())
    }

    /// Penultimate representations, column-major (see
    /// [`ResNetClassifier::embed`]).
    pub fn embed(&self, x: &[Vec<f64>]) -> Result<Vec<Vec<f64>>> {
        let (core, scaler) = self.parts()?;
        if x.len() != scaler.n_features() {
            return Err(LearnError::DimensionMismatch {
                fitted: scaler.n_features(),
                got: x.len(),
            });
        }
        let rows = Mat::from_columns(&scaler.transform(x));
        Ok(to_columns(&embed_rows(core, &rows)))
    }

    /// The trained flat parameter slab (testing / benchmarking hook).
    pub fn trained_params(&self) -> Option<&[f64]> {
        self.core.as_ref().map(FlatNet::params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{accuracy, one_minus_rae};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blobs(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = Vec::new();
        let mut b = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let c = i % 2;
            let center = if c == 0 { -1.5 } else { 1.5 };
            a.push(center + rng.gen_range(-1.0..1.0));
            b.push(center + rng.gen_range(-1.0..1.0));
            y.push(c);
        }
        (vec![a, b], y)
    }

    #[test]
    fn classifier_separates_blobs() {
        let (x, y) = blobs(200, 1);
        let mut m = ResNetClassifier::new(ResNetConfig {
            epochs: 30,
            ..Default::default()
        });
        m.fit(&x, &y, 2).unwrap();
        let acc = accuracy(&y, &m.predict(&x).unwrap()).unwrap();
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn embed_shape_is_column_major_width() {
        let (x, y) = blobs(50, 2);
        let cfg = ResNetConfig {
            epochs: 3,
            width: 16,
            ..Default::default()
        };
        let mut m = ResNetClassifier::new(cfg);
        m.fit(&x, &y, 2).unwrap();
        let e = m.embed(&x).unwrap();
        assert_eq!(e.len(), 16);
        assert_eq!(e[0].len(), 50);
    }

    #[test]
    fn regressor_fits_linear_function() {
        let xs: Vec<f64> = (0..150).map(|i| i as f64 / 25.0).collect();
        let y: Vec<f64> = xs.iter().map(|v| 3.0 * v - 1.0).collect();
        let mut m = ResNetRegressor::new(ResNetConfig {
            epochs: 60,
            ..Default::default()
        });
        m.fit(std::slice::from_ref(&xs), &y).unwrap();
        let score = one_minus_rae(&y, &m.predict(&[xs]).unwrap()).unwrap();
        assert!(score > 0.9, "1-rae {score}");
    }

    #[test]
    fn scalar_backend_matches_batched_embed() {
        let (x, y) = blobs(40, 5);
        let base = ResNetConfig {
            epochs: 4,
            width: 8,
            n_blocks: 1,
            ..Default::default()
        };
        let mut batched = ResNetClassifier::new(base);
        let mut scalar = ResNetClassifier::new(ResNetConfig {
            backend: NnBackend::Scalar,
            ..base
        });
        batched.fit(&x, &y, 2).unwrap();
        scalar.fit(&x, &y, 2).unwrap();
        for (p, q) in batched
            .trained_params()
            .unwrap()
            .iter()
            .zip(scalar.trained_params().unwrap())
        {
            assert_eq!(p.to_bits(), q.to_bits());
        }
        let eb = batched.embed(&x).unwrap();
        let es = scalar.embed(&x).unwrap();
        for (cb, cs) in eb.iter().zip(&es) {
            for (a, b) in cb.iter().zip(cs) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn errors_on_bad_input() {
        let m = ResNetClassifier::new(ResNetConfig::default());
        assert!(m.predict(&[vec![1.0]]).is_err());
        assert!(m.embed(&[vec![1.0]]).is_err());
        let mut m = ResNetClassifier::new(ResNetConfig::default());
        assert!(m.fit(&[], &[], 2).is_err());
    }
}
