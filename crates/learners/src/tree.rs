//! CART decision trees (classification via Gini impurity, regression via
//! variance reduction) — the building block of the Random Forest downstream
//! task used throughout the paper.
//!
//! Features are accessed column-major (`x[feature][row]`), matching
//! `tabular::DataFrame`'s layout so forests can train without transposing.

use crate::error::{LearnError, Result};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters shared by classification and regression trees.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum tree depth (root is depth 0).
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples that must land in each child.
    pub min_samples_leaf: usize,
    /// Number of candidate features per split; `None` means all features.
    /// Forests set this to √N for decorrelation.
    pub max_features: Option<usize>,
    /// Seed for the per-split feature subsampling.
    pub seed: u64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 10,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: None,
            seed: 0,
        }
    }
}

/// What the tree predicts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Target {
    /// Class counts at the leaf (argmax predicted, counts give probabilities).
    ClassCounts(Vec<f64>),
    /// Mean target at the leaf.
    Mean(f64),
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf(Target),
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// Label view the builder trains against.
#[derive(Clone, Copy)]
enum Labels<'a> {
    Class { y: &'a [usize], n_classes: usize },
    Reg(&'a [f64]),
}

/// A fitted CART tree. Construct through [`DecisionTreeClassifier`] or
/// [`DecisionTreeRegressor`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tree {
    nodes: Vec<Node>,
    n_features: usize,
    /// Total impurity decrease attributed to each feature (unnormalised).
    importances: Vec<f64>,
}

impl Tree {
    /// Per-feature importance: impurity decrease normalised to sum to 1
    /// (all zeros when the tree is a single leaf).
    pub fn feature_importances(&self) -> Vec<f64> {
        let total: f64 = self.importances.iter().sum();
        if total <= 0.0 {
            return vec![0.0; self.n_features];
        }
        self.importances.iter().map(|v| v / total).collect()
    }

    /// Number of nodes in the fitted tree.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn leaf_for_row(&self, x: &[Vec<f64>], row: usize) -> &Target {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf(t) => return t,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature][row] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

struct Builder<'a> {
    x: &'a [Vec<f64>],
    labels: Labels<'a>,
    cfg: TreeConfig,
    nodes: Vec<Node>,
    importances: Vec<f64>,
    rng: StdRng,
    n_total: usize,
    feature_pool: Vec<usize>,
}

impl<'a> Builder<'a> {
    fn build(x: &'a [Vec<f64>], labels: Labels<'a>, cfg: TreeConfig) -> Result<Tree> {
        let n_rows = match labels {
            Labels::Class { y, .. } => y.len(),
            Labels::Reg(y) => y.len(),
        };
        if x.is_empty() || n_rows == 0 {
            return Err(LearnError::EmptyTrainingSet("decision tree".into()));
        }
        for col in x {
            if col.len() != n_rows {
                return Err(LearnError::InvalidParam(format!(
                    "feature column length {} != label length {n_rows}",
                    col.len()
                )));
            }
        }
        let mut b = Builder {
            x,
            labels,
            cfg,
            nodes: Vec::new(),
            importances: vec![0.0; x.len()],
            rng: StdRng::seed_from_u64(cfg.seed),
            n_total: n_rows,
            feature_pool: (0..x.len()).collect(),
        };
        let rows: Vec<usize> = (0..n_rows).collect();
        b.grow(&rows, 0);
        Ok(Tree {
            nodes: b.nodes,
            n_features: x.len(),
            importances: b.importances,
        })
    }

    fn leaf_target(&self, rows: &[usize]) -> Target {
        match self.labels {
            Labels::Class { y, n_classes } => {
                let mut counts = vec![0.0; n_classes];
                for &r in rows {
                    counts[y[r]] += 1.0;
                }
                Target::ClassCounts(counts)
            }
            Labels::Reg(y) => {
                let mean = rows.iter().map(|&r| y[r]).sum::<f64>() / rows.len().max(1) as f64;
                Target::Mean(mean)
            }
        }
    }

    fn impurity(&self, rows: &[usize]) -> f64 {
        match self.labels {
            Labels::Class { y, n_classes } => {
                let mut counts = vec![0usize; n_classes];
                for &r in rows {
                    counts[y[r]] += 1;
                }
                gini(&counts, rows.len())
            }
            Labels::Reg(y) => {
                let n = rows.len() as f64;
                let sum: f64 = rows.iter().map(|&r| y[r]).sum();
                let sumsq: f64 = rows.iter().map(|&r| y[r] * y[r]).sum();
                (sumsq / n - (sum / n) * (sum / n)).max(0.0)
            }
        }
    }

    /// Recursively grow the subtree for `rows`; returns the node index.
    fn grow(&mut self, rows: &[usize], depth: usize) -> usize {
        let node_impurity = self.impurity(rows);
        let stop = depth >= self.cfg.max_depth
            || rows.len() < self.cfg.min_samples_split
            || node_impurity <= 1e-12;
        if !stop {
            if let Some((feature, threshold, gain)) = self.best_split(rows, node_impurity) {
                let (left_rows, right_rows): (Vec<usize>, Vec<usize>) =
                    rows.iter().partition(|&&r| self.x[feature][r] <= threshold);
                if left_rows.len() >= self.cfg.min_samples_leaf
                    && right_rows.len() >= self.cfg.min_samples_leaf
                {
                    self.importances[feature] += gain * rows.len() as f64 / self.n_total as f64;
                    let idx = self.nodes.len();
                    self.nodes.push(Node::Split {
                        feature,
                        threshold,
                        left: usize::MAX,
                        right: usize::MAX,
                    });
                    let left = self.grow(&left_rows, depth + 1);
                    let right = self.grow(&right_rows, depth + 1);
                    if let Node::Split {
                        left: l, right: r, ..
                    } = &mut self.nodes[idx]
                    {
                        *l = left;
                        *r = right;
                    }
                    return idx;
                }
            }
        }
        let idx = self.nodes.len();
        let target = self.leaf_target(rows);
        self.nodes.push(Node::Leaf(target));
        idx
    }

    /// Best (feature, threshold, impurity decrease) over a random feature
    /// subset, or `None` if no valid split exists.
    fn best_split(&mut self, rows: &[usize], node_impurity: f64) -> Option<(usize, f64, f64)> {
        let k = self
            .cfg
            .max_features
            .unwrap_or(self.x.len())
            .clamp(1, self.x.len());
        self.feature_pool.shuffle(&mut self.rng);
        let candidates: Vec<usize> = self.feature_pool[..k].to_vec();

        let mut best: Option<(usize, f64, f64)> = None;
        let mut sortable: Vec<(f64, usize)> = Vec::with_capacity(rows.len());
        for feature in candidates {
            sortable.clear();
            sortable.extend(rows.iter().map(|&r| (self.x[feature][r], r)));
            sortable.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            if sortable[0].0 == sortable[sortable.len() - 1].0 {
                continue; // constant within node
            }
            if let Some((threshold, child_impurity)) = self.scan_feature(&sortable) {
                let gain = node_impurity - child_impurity;
                if gain > 1e-12 && best.is_none_or(|(_, _, g)| gain > g) {
                    best = Some((feature, threshold, gain));
                }
            }
        }
        best
    }

    /// Scan sorted (value, row) pairs, returning the boundary threshold with
    /// minimum weighted child impurity.
    fn scan_feature(&self, sorted: &[(f64, usize)]) -> Option<(f64, f64)> {
        let n = sorted.len();
        match self.labels {
            Labels::Class { y, n_classes } => {
                let mut left = vec![0usize; n_classes];
                let mut right = vec![0usize; n_classes];
                for &(_, r) in sorted {
                    right[y[r]] += 1;
                }
                let mut best: Option<(f64, f64)> = None;
                for i in 0..n - 1 {
                    let c = y[sorted[i].1];
                    left[c] += 1;
                    right[c] -= 1;
                    if sorted[i].0 == sorted[i + 1].0 {
                        continue; // can't split between equal values
                    }
                    let nl = i + 1;
                    let nr = n - nl;
                    if nl < self.cfg.min_samples_leaf || nr < self.cfg.min_samples_leaf {
                        continue;
                    }
                    let w = (nl as f64 * gini(&left, nl) + nr as f64 * gini(&right, nr)) / n as f64;
                    if best.is_none_or(|(_, bw)| w < bw) {
                        best = Some((midpoint(sorted[i].0, sorted[i + 1].0), w));
                    }
                }
                best
            }
            Labels::Reg(y) => {
                let total_sum: f64 = sorted.iter().map(|&(_, r)| y[r]).sum();
                let total_sumsq: f64 = sorted.iter().map(|&(_, r)| y[r] * y[r]).sum();
                let mut lsum = 0.0;
                let mut lsumsq = 0.0;
                let mut best: Option<(f64, f64)> = None;
                for i in 0..n - 1 {
                    let v = y[sorted[i].1];
                    lsum += v;
                    lsumsq += v * v;
                    if sorted[i].0 == sorted[i + 1].0 {
                        continue;
                    }
                    let nl = (i + 1) as f64;
                    let nr = (n - i - 1) as f64;
                    if (i + 1) < self.cfg.min_samples_leaf
                        || (n - i - 1) < self.cfg.min_samples_leaf
                    {
                        continue;
                    }
                    let lvar = (lsumsq / nl - (lsum / nl) * (lsum / nl)).max(0.0);
                    let rsum = total_sum - lsum;
                    let rsumsq = total_sumsq - lsumsq;
                    let rvar = (rsumsq / nr - (rsum / nr) * (rsum / nr)).max(0.0);
                    let w = (nl * lvar + nr * rvar) / n as f64;
                    if best.is_none_or(|(_, bw)| w < bw) {
                        best = Some((midpoint(sorted[i].0, sorted[i + 1].0), w));
                    }
                }
                best
            }
        }
    }
}

fn gini(counts: &[usize], n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let n = n as f64;
    1.0 - counts
        .iter()
        .map(|&c| {
            let p = c as f64 / n;
            p * p
        })
        .sum::<f64>()
}

fn midpoint(a: f64, b: f64) -> f64 {
    a + (b - a) / 2.0
}

/// A CART classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTreeClassifier {
    /// Hyper-parameters used at fit time.
    pub config: TreeConfig,
    tree: Option<Tree>,
    n_classes: usize,
}

impl DecisionTreeClassifier {
    /// New unfitted classifier.
    pub fn new(config: TreeConfig) -> Self {
        Self {
            config,
            tree: None,
            n_classes: 0,
        }
    }

    /// Fit on column-major features and class labels in `0..n_classes`.
    pub fn fit(&mut self, x: &[Vec<f64>], y: &[usize], n_classes: usize) -> Result<()> {
        if n_classes == 0 {
            return Err(LearnError::InvalidParam("n_classes must be > 0".into()));
        }
        self.tree = Some(Builder::build(
            x,
            Labels::Class { y, n_classes },
            self.config,
        )?);
        self.n_classes = n_classes;
        Ok(())
    }

    /// Predict class labels for column-major features.
    pub fn predict(&self, x: &[Vec<f64>]) -> Result<Vec<usize>> {
        Ok(self
            .predict_proba(x)?
            .into_iter()
            .map(|p| argmax(&p))
            .collect())
    }

    /// Per-row class probability estimates (leaf class frequencies).
    pub fn predict_proba(&self, x: &[Vec<f64>]) -> Result<Vec<Vec<f64>>> {
        let tree = self
            .tree
            .as_ref()
            .ok_or(LearnError::NotFitted("DecisionTreeClassifier"))?;
        check_predict_input(x, tree.n_features)?;
        let n_rows = x.first().map_or(0, |c| c.len());
        let mut out = Vec::with_capacity(n_rows);
        for row in 0..n_rows {
            match tree.leaf_for_row(x, row) {
                Target::ClassCounts(counts) => {
                    let total: f64 = counts.iter().sum::<f64>().max(1.0);
                    out.push(counts.iter().map(|c| c / total).collect());
                }
                Target::Mean(_) => unreachable!("classifier tree has class leaves"),
            }
        }
        Ok(out)
    }

    /// The fitted tree, if any.
    pub fn tree(&self) -> Option<&Tree> {
        self.tree.as_ref()
    }
}

/// A CART regressor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTreeRegressor {
    /// Hyper-parameters used at fit time.
    pub config: TreeConfig,
    tree: Option<Tree>,
}

impl DecisionTreeRegressor {
    /// New unfitted regressor.
    pub fn new(config: TreeConfig) -> Self {
        Self { config, tree: None }
    }

    /// Fit on column-major features and real-valued targets.
    pub fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<()> {
        self.tree = Some(Builder::build(x, Labels::Reg(y), self.config)?);
        Ok(())
    }

    /// Predict targets for column-major features.
    pub fn predict(&self, x: &[Vec<f64>]) -> Result<Vec<f64>> {
        let tree = self
            .tree
            .as_ref()
            .ok_or(LearnError::NotFitted("DecisionTreeRegressor"))?;
        check_predict_input(x, tree.n_features)?;
        let n_rows = x.first().map_or(0, |c| c.len());
        let mut out = Vec::with_capacity(n_rows);
        for row in 0..n_rows {
            match tree.leaf_for_row(x, row) {
                Target::Mean(m) => out.push(*m),
                Target::ClassCounts(_) => unreachable!("regressor tree has mean leaves"),
            }
        }
        Ok(out)
    }

    /// The fitted tree, if any.
    pub fn tree(&self) -> Option<&Tree> {
        self.tree.as_ref()
    }
}

fn check_predict_input(x: &[Vec<f64>], fitted: usize) -> Result<()> {
    if x.len() != fitted {
        return Err(LearnError::DimensionMismatch {
            fitted,
            got: x.len(),
        });
    }
    Ok(())
}

pub(crate) fn argmax(v: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in v.iter().enumerate() {
        if x > v[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// XOR-ish separable data: class = (a > 0) != (b > 0).
    fn xor_data(n: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut a = Vec::new();
        let mut b = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let av = if i % 2 == 0 { 1.0 } else { -1.0 } * (1.0 + (i % 5) as f64);
            let bv = if (i / 2) % 2 == 0 { 1.0 } else { -1.0 } * (1.0 + (i % 7) as f64);
            a.push(av);
            b.push(bv);
            y.push(usize::from((av > 0.0) != (bv > 0.0)));
        }
        (vec![a, b], y)
    }

    #[test]
    fn classifier_learns_xor() {
        let (x, y) = xor_data(64);
        let mut t = DecisionTreeClassifier::new(TreeConfig::default());
        t.fit(&x, &y, 2).unwrap();
        assert_eq!(t.predict(&x).unwrap(), y);
    }

    #[test]
    fn pure_node_is_leaf() {
        let x = vec![vec![1.0, 2.0, 3.0]];
        let y = vec![1, 1, 1];
        let mut t = DecisionTreeClassifier::new(TreeConfig::default());
        t.fit(&x, &y, 2).unwrap();
        assert_eq!(t.tree().unwrap().n_nodes(), 1);
        assert_eq!(t.predict(&x).unwrap(), y);
    }

    #[test]
    fn depth_zero_predicts_majority() {
        let (x, y) = xor_data(40);
        let cfg = TreeConfig {
            max_depth: 0,
            ..Default::default()
        };
        let mut t = DecisionTreeClassifier::new(cfg);
        t.fit(&x, &y, 2).unwrap();
        let preds = t.predict(&x).unwrap();
        assert!(preds.iter().all(|&p| p == preds[0]));
    }

    #[test]
    fn regressor_fits_step_function() {
        let x = vec![(0..100).map(|i| i as f64).collect::<Vec<_>>()];
        let y: Vec<f64> = (0..100).map(|i| if i < 50 { 1.0 } else { 5.0 }).collect();
        let mut t = DecisionTreeRegressor::new(TreeConfig::default());
        t.fit(&x, &y).unwrap();
        let preds = t.predict(&x).unwrap();
        for (p, t) in preds.iter().zip(&y) {
            assert!((p - t).abs() < 1e-9);
        }
    }

    #[test]
    fn regressor_constant_target_single_leaf() {
        let x = vec![vec![1.0, 2.0, 3.0, 4.0]];
        let y = vec![7.0; 4];
        let mut t = DecisionTreeRegressor::new(TreeConfig::default());
        t.fit(&x, &y).unwrap();
        assert_eq!(t.tree().unwrap().n_nodes(), 1);
        assert_eq!(t.predict(&x).unwrap(), y);
    }

    #[test]
    fn min_samples_leaf_enforced() {
        let (x, y) = xor_data(16);
        let cfg = TreeConfig {
            min_samples_leaf: 20, // larger than half the data → no split legal
            ..Default::default()
        };
        let mut t = DecisionTreeClassifier::new(cfg);
        t.fit(&x, &y, 2).unwrap();
        assert_eq!(t.tree().unwrap().n_nodes(), 1);
    }

    #[test]
    fn importances_sum_to_one_when_split() {
        let (x, y) = xor_data(64);
        let mut t = DecisionTreeClassifier::new(TreeConfig::default());
        t.fit(&x, &y, 2).unwrap();
        let imp = t.tree().unwrap().feature_importances();
        assert_eq!(imp.len(), 2);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Both XOR features matter.
        assert!(imp.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn errors_on_empty_and_mismatched_input() {
        let mut t = DecisionTreeClassifier::new(TreeConfig::default());
        assert!(t.fit(&[], &[], 2).is_err());
        assert!(t.fit(&[vec![1.0, 2.0]], &[0], 2).is_err());
        assert!(t.predict(&[vec![1.0]]).is_err()); // not fitted
        let (x, y) = xor_data(8);
        t.fit(&x, &y, 2).unwrap();
        assert!(t.predict(&[vec![1.0]]).is_err()); // wrong dimension
    }

    #[test]
    fn probabilities_are_distributions() {
        let (x, y) = xor_data(32);
        let cfg = TreeConfig {
            max_depth: 1,
            ..Default::default()
        };
        let mut t = DecisionTreeClassifier::new(cfg);
        t.fit(&x, &y, 2).unwrap();
        for p in t.predict_proba(&x).unwrap() {
            assert_eq!(p.len(), 2);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn ties_in_feature_values_are_respected() {
        // Feature has duplicate values at the would-be boundary; the tree
        // must not split between equal values.
        let x = vec![vec![1.0, 1.0, 1.0, 2.0]];
        let y = vec![0, 0, 1, 1];
        let mut t = DecisionTreeClassifier::new(TreeConfig::default());
        t.fit(&x, &y, 2).unwrap();
        let preds = t.predict(&x).unwrap();
        // Rows with value 1.0 share a leaf → same prediction.
        assert_eq!(preds[0], preds[1]);
        assert_eq!(preds[1], preds[2]);
        assert_eq!(preds[3], 1);
    }
}
