//! CART decision trees (classification via Gini impurity, regression via
//! variance reduction) — the building block of the Random Forest downstream
//! task used throughout the paper.
//!
//! Features are accessed column-major (`x[feature][row]`), matching
//! `tabular::DataFrame`'s layout so forests can train without transposing.
//!
//! Two split-finding paths share one builder, selected by
//! [`TreeConfig::split`]:
//!
//! - [`SplitMethod::Exact`] — the reference path: sort every candidate
//!   feature at every node and scan the sorted boundary positions.
//! - [`SplitMethod::Histogram`] — quantise each feature once into a
//!   [`BinnedDataset`] (see [`crate::binned`]), then find node splits by
//!   an `O(n_rows)` histogram-accumulation pass per feature plus an
//!   `O(n_bins)` scan, with the sibling-subtraction trick (a right
//!   child's histogram is its parent's minus its left sibling's).
//!
//! Both paths run node rows through a single in-place stably-partitioned
//! row-index buffer and reuse scratch sort/count buffers across nodes, so
//! steady-state split finding allocates only per-node leaf payloads and
//! (histogram path) the per-feature histograms that the subtraction trick
//! hands from parent to child.

use crate::binned::{self, BinnedDataset, RegBin, SplitMethod, DEFAULT_MAX_BINS, MAX_BINS_LIMIT};
use crate::error::{LearnError, Result};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters shared by classification and regression trees.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum tree depth (root is depth 0).
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples that must land in each child.
    pub min_samples_leaf: usize,
    /// Number of candidate features per split; `None` means all features.
    /// Forests set this to √N for decorrelation.
    pub max_features: Option<usize>,
    /// Seed for the per-split feature subsampling.
    pub seed: u64,
    /// How candidate splits are enumerated.
    pub split: SplitMethod,
    /// Per-feature bin budget for [`SplitMethod::Histogram`] (ignored by
    /// the exact path).
    pub max_bins: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 10,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: None,
            seed: 0,
            split: SplitMethod::Exact,
            max_bins: DEFAULT_MAX_BINS,
        }
    }
}

impl TreeConfig {
    fn validate(&self) -> Result<()> {
        if self.split == SplitMethod::Histogram && !(2..=MAX_BINS_LIMIT).contains(&self.max_bins) {
            return Err(LearnError::InvalidParam(format!(
                "max_bins must be in 2..={MAX_BINS_LIMIT}, got {}",
                self.max_bins
            )));
        }
        Ok(())
    }
}

/// What the tree predicts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Target {
    /// Class counts at the leaf (argmax predicted, counts give probabilities).
    ClassCounts(Vec<f64>),
    /// Mean target at the leaf.
    Mean(f64),
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf(Target),
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// Label view the builder trains against.
#[derive(Clone, Copy)]
enum Labels<'a> {
    Class { y: &'a [usize], n_classes: usize },
    Reg(&'a [f64]),
}

impl Labels<'_> {
    fn len(&self) -> usize {
        match self {
            Labels::Class { y, .. } => y.len(),
            Labels::Reg(y) => y.len(),
        }
    }
}

/// Feature view the builder trains against.
#[derive(Clone, Copy)]
enum Data<'a> {
    /// Raw column-major values; splits found by per-node sorting.
    Exact(&'a [Vec<f64>]),
    /// Pre-quantised columns; splits found by histogram scans.
    Binned(&'a BinnedDataset),
}

impl Data<'_> {
    fn n_features(&self) -> usize {
        match self {
            Data::Exact(x) => x.len(),
            Data::Binned(b) => b.n_features(),
        }
    }
}

/// A fitted CART tree. Construct through [`DecisionTreeClassifier`] or
/// [`DecisionTreeRegressor`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tree {
    nodes: Vec<Node>,
    n_features: usize,
    /// Total impurity decrease attributed to each feature (unnormalised).
    importances: Vec<f64>,
}

impl Tree {
    /// Per-feature importance: impurity decrease normalised to sum to 1
    /// (all zeros when the tree is a single leaf).
    pub fn feature_importances(&self) -> Vec<f64> {
        let total: f64 = self.importances.iter().sum();
        if total <= 0.0 {
            return vec![0.0; self.n_features];
        }
        self.importances.iter().map(|v| v / total).collect()
    }

    /// Number of nodes in the fitted tree.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn leaf_for_row(&self, x: &[Vec<f64>], row: usize) -> &Target {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf(t) => return t,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature][row] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

/// Per-feature node histogram handed between siblings by the subtraction
/// trick.
enum Hist {
    Class(Vec<u32>),
    Reg(Vec<RegBin>),
}

/// A chosen split: `bin` is the boundary index in the histogram path
/// (unused by the exact path); `threshold` is always on the raw value
/// scale so prediction never needs the bins.
struct Candidate {
    feature: usize,
    threshold: f64,
    bin: usize,
    gain: f64,
}

/// Scratch buffers reused across every node of a build — the exact path's
/// per-node heap traffic lives (and dies) here.
#[derive(Default)]
struct Scratch {
    /// Right-side rows during the in-place stable partition.
    partition: Vec<usize>,
    /// (value, row) pairs for the exact path's per-feature sort.
    sortable: Vec<(f64, usize)>,
    /// Class counts of the current node (impurity).
    node_counts: Vec<usize>,
    /// Class counts left of the scanned boundary.
    left_counts: Vec<usize>,
    /// Class counts right of the scanned boundary.
    right_counts: Vec<usize>,
    /// (bin code, class) pairs for the histogram path's small-node
    /// sorted-codes scan.
    codes: Vec<(usize, usize)>,
}

struct Builder<'a> {
    data: Data<'a>,
    labels: Labels<'a>,
    cfg: TreeConfig,
    nodes: Vec<Node>,
    importances: Vec<f64>,
    rng: StdRng,
    n_total: usize,
    feature_pool: Vec<usize>,
    /// The single row-index buffer; `grow` works on `lo..hi` ranges of it
    /// and partitions in place.
    rows: Vec<usize>,
    scratch: Scratch,
    /// Histograms obtained by sibling subtraction instead of
    /// re-accumulation (flushed to telemetry once per tree).
    hists_subtracted: u64,
    /// Small nodes split via the sorted-codes scan instead of a dense
    /// histogram (flushed to telemetry once per tree).
    sparse_scans: u64,
}

impl<'a> Builder<'a> {
    fn build(
        data: Data<'a>,
        rows: Vec<usize>,
        labels: Labels<'a>,
        cfg: TreeConfig,
    ) -> Result<Tree> {
        let n_rows = labels.len();
        if data.n_features() == 0 || n_rows == 0 || rows.is_empty() {
            return Err(LearnError::EmptyTrainingSet("decision tree".into()));
        }
        match data {
            Data::Exact(x) => {
                for col in x {
                    if col.len() != n_rows {
                        return Err(LearnError::InvalidParam(format!(
                            "feature column length {} != label length {n_rows}",
                            col.len()
                        )));
                    }
                }
            }
            Data::Binned(b) => {
                if b.n_rows() != n_rows {
                    return Err(LearnError::InvalidParam(format!(
                        "binned dataset rows {} != label length {n_rows}",
                        b.n_rows()
                    )));
                }
            }
        }
        if rows.iter().any(|&r| r >= n_rows) {
            return Err(LearnError::InvalidParam(
                "training row index out of bounds".into(),
            ));
        }
        let n_features = data.n_features();
        let n_train = rows.len();
        let mut b = Builder {
            data,
            labels,
            cfg,
            nodes: Vec::new(),
            importances: vec![0.0; n_features],
            rng: StdRng::seed_from_u64(cfg.seed),
            n_total: n_train,
            feature_pool: (0..n_features).collect(),
            rows,
            scratch: Scratch::default(),
            hists_subtracted: 0,
            sparse_scans: 0,
        };
        let timed = matches!(data, Data::Binned(_)) && telemetry::enabled();
        let start = timed.then(std::time::Instant::now);
        b.grow(0, n_train, 0, Vec::new());
        if let Some(t) = start {
            telemetry::record("tree.hist_us", t.elapsed().as_micros() as u64);
        }
        if b.hists_subtracted > 0 {
            telemetry::count("tree.hist_subtracted", b.hists_subtracted);
        }
        if b.sparse_scans > 0 {
            telemetry::count("tree.hist_sparse_scans", b.sparse_scans);
        }
        Ok(Tree {
            nodes: b.nodes,
            n_features,
            importances: b.importances,
        })
    }

    fn leaf_target(&self, lo: usize, hi: usize) -> Target {
        let rows = &self.rows[lo..hi];
        match self.labels {
            Labels::Class { y, n_classes } => {
                let mut counts = vec![0.0; n_classes];
                for &r in rows {
                    counts[y[r]] += 1.0;
                }
                Target::ClassCounts(counts)
            }
            Labels::Reg(y) => {
                let mean = rows.iter().map(|&r| y[r]).sum::<f64>() / rows.len().max(1) as f64;
                Target::Mean(mean)
            }
        }
    }

    fn impurity(&mut self, lo: usize, hi: usize) -> f64 {
        let rows = &self.rows[lo..hi];
        match self.labels {
            Labels::Class { y, n_classes } => {
                let counts = &mut self.scratch.node_counts;
                counts.clear();
                counts.resize(n_classes, 0);
                for &r in rows {
                    counts[y[r]] += 1;
                }
                gini(counts, rows.len())
            }
            Labels::Reg(y) => {
                let n = rows.len() as f64;
                let sum: f64 = rows.iter().map(|&r| y[r]).sum();
                let sumsq: f64 = rows.iter().map(|&r| y[r] * y[r]).sum();
                (sumsq / n - (sum / n) * (sum / n)).max(0.0)
            }
        }
    }

    /// Rows of `lo..hi` that the candidate sends left, without reordering
    /// anything — the leaf fallback must see rows in their original order.
    fn count_left(&self, lo: usize, hi: usize, c: &Candidate) -> usize {
        let rows = &self.rows[lo..hi];
        match self.data {
            Data::Exact(x) => {
                let col = &x[c.feature];
                rows.iter().filter(|&&r| col[r] <= c.threshold).count()
            }
            Data::Binned(b) => {
                let codes = b.column(c.feature).codes();
                rows.iter().filter(|&&r| codes.get(r) <= c.bin).count()
            }
        }
    }

    /// Stable in-place partition of `rows[lo..hi]` by the candidate's
    /// predicate; returns the left-side length. Preserves the relative
    /// order of both sides, exactly like `Iterator::partition` did.
    fn partition(&mut self, lo: usize, hi: usize, c: &Candidate) -> usize {
        let data = self.data;
        let rows = &mut self.rows[lo..hi];
        let scratch = &mut self.scratch.partition;
        match data {
            Data::Exact(x) => {
                let col = &x[c.feature];
                stable_partition(rows, scratch, |r| col[r] <= c.threshold)
            }
            Data::Binned(b) => {
                let codes = b.column(c.feature).codes();
                stable_partition(rows, scratch, |r| codes.get(r) <= c.bin)
            }
        }
    }

    /// Recursively grow the subtree for `rows[lo..hi]`; returns the node
    /// index and (histogram path) the per-feature histograms this node
    /// accumulated, which the caller turns into the right sibling's via
    /// subtraction.
    fn grow(
        &mut self,
        lo: usize,
        hi: usize,
        depth: usize,
        mut inherited: Vec<(usize, Hist)>,
    ) -> (usize, Vec<(usize, Hist)>) {
        let n = hi - lo;
        let node_impurity = self.impurity(lo, hi);
        let stop =
            depth >= self.cfg.max_depth || n < self.cfg.min_samples_split || node_impurity <= 1e-12;
        let mut node_hists = Vec::new();
        if !stop {
            let (cand, hists) = self.best_split(lo, hi, node_impurity, &mut inherited);
            node_hists = hists;
            if let Some(c) = cand {
                let nl = self.count_left(lo, hi, &c);
                if nl >= self.cfg.min_samples_leaf && n - nl >= self.cfg.min_samples_leaf {
                    self.partition(lo, hi, &c);
                    self.importances[c.feature] += c.gain * n as f64 / self.n_total as f64;
                    let idx = self.nodes.len();
                    self.nodes.push(Node::Split {
                        feature: c.feature,
                        threshold: c.threshold,
                        left: usize::MAX,
                        right: usize::MAX,
                    });
                    let (left, left_hists) = self.grow(lo, lo + nl, depth + 1, Vec::new());
                    let right_inherited = subtract_siblings(&node_hists, left_hists);
                    let (right, _) = self.grow(lo + nl, hi, depth + 1, right_inherited);
                    if let Node::Split {
                        left: l, right: r, ..
                    } = &mut self.nodes[idx]
                    {
                        *l = left;
                        *r = right;
                    }
                    return (idx, node_hists);
                }
            }
        }
        let idx = self.nodes.len();
        let target = self.leaf_target(lo, hi);
        self.nodes.push(Node::Leaf(target));
        (idx, node_hists)
    }

    /// Best candidate split over a random feature subset, or `None` if no
    /// valid split exists. Also returns (histogram path) every candidate
    /// feature's node histogram for sibling reuse.
    fn best_split(
        &mut self,
        lo: usize,
        hi: usize,
        node_impurity: f64,
        inherited: &mut Vec<(usize, Hist)>,
    ) -> (Option<Candidate>, Vec<(usize, Hist)>) {
        let k = self
            .cfg
            .max_features
            .unwrap_or(self.feature_pool.len())
            .clamp(1, self.feature_pool.len());
        self.feature_pool.shuffle(&mut self.rng);
        match self.data {
            Data::Exact(x) => (
                self.best_split_exact(x, lo, hi, k, node_impurity),
                Vec::new(),
            ),
            Data::Binned(b) => self.best_split_hist(b, lo, hi, k, node_impurity, inherited),
        }
    }

    fn best_split_exact(
        &mut self,
        x: &[Vec<f64>],
        lo: usize,
        hi: usize,
        k: usize,
        node_impurity: f64,
    ) -> Option<Candidate> {
        let rows = &self.rows[lo..hi];
        let labels = self.labels;
        let msl = self.cfg.min_samples_leaf;
        let sortable = &mut self.scratch.sortable;
        let left = &mut self.scratch.left_counts;
        let right = &mut self.scratch.right_counts;
        let mut best: Option<Candidate> = None;
        for i in 0..k {
            let feature = self.feature_pool[i];
            sortable.clear();
            sortable.extend(rows.iter().map(|&r| (x[feature][r], r)));
            sortable.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            if sortable[0].0 == sortable[sortable.len() - 1].0 {
                continue; // constant within node
            }
            if let Some((threshold, child_impurity)) =
                scan_sorted(labels, msl, sortable, left, right)
            {
                let gain = node_impurity - child_impurity;
                if gain > 1e-12 && best.as_ref().is_none_or(|b| gain > b.gain) {
                    best = Some(Candidate {
                        feature,
                        threshold,
                        bin: 0,
                        gain,
                    });
                }
            }
        }
        best
    }

    /// Histogram split finding in three phases (DESIGN.md §13): classify
    /// every candidate feature, batch-accumulate the ones that need an
    /// `O(rows)` pass (feature-parallel across the worker pool, merged in
    /// fixed feature order so any thread count is bitwise identical to
    /// one), then scan serially in the shuffled `feature_pool` order the
    /// node drew — the scan order carries the strict `gain >` tie-break,
    /// so it must not change with the accumulation schedule.
    fn best_split_hist(
        &mut self,
        binned: &BinnedDataset,
        lo: usize,
        hi: usize,
        k: usize,
        node_impurity: f64,
        inherited: &mut Vec<(usize, Hist)>,
    ) -> (Option<Candidate>, Vec<(usize, Hist)>) {
        let rows = &self.rows[lo..hi];
        let labels = self.labels;
        let msl = self.cfg.min_samples_leaf;

        /// Where one candidate feature's histogram comes from.
        enum Plan {
            /// Small classification node: sort the node's codes and scan
            /// the runs instead of building a dense histogram.
            Sparse,
            /// Sibling subtraction already produced this feature's node
            /// histogram — skip the `O(rows)` accumulation pass.
            Ready(Hist),
            /// Needs accumulation; index into the batched results.
            Batched(usize),
        }
        let mut plans: Vec<(usize, Plan)> = Vec::with_capacity(k);
        let mut batch_features: Vec<usize> = Vec::new();
        for i in 0..k {
            let feature = self.feature_pool[i];
            let col = binned.column(feature);
            let inherited_pos = inherited.iter().position(|(f, _)| *f == feature);
            // Small nodes: a dense histogram costs O(n_bins) to allocate,
            // zero and scan no matter how few rows the node has. When the
            // node is smaller than the bin count (and no subtracted
            // histogram is already on hand), sort the node's codes and
            // scan the runs instead — bit-identical boundaries and gains
            // (integer counts), O(rows log rows), nothing stored for the
            // children (they are even smaller and take this path too).
            let plan = match inherited_pos {
                None if rows.len() < col.n_bins() && matches!(labels, Labels::Class { .. }) => {
                    Plan::Sparse
                }
                Some(p) => {
                    self.hists_subtracted += 1;
                    Plan::Ready(inherited.swap_remove(p).1)
                }
                None => {
                    batch_features.push(feature);
                    Plan::Batched(batch_features.len() - 1)
                }
            };
            plans.push((feature, plan));
        }

        // Accumulate every needed histogram in one batch — one feature per
        // worker-pool task, merged back in `batch_features` order.
        let cols: Vec<&binned::BinnedColumn> =
            batch_features.iter().map(|&f| binned.column(f)).collect();
        let mut batched: Vec<Option<Hist>> = match labels {
            Labels::Class { y, n_classes } => {
                binned::accumulate_class_parallel(&cols, rows, y, n_classes)
                    .into_iter()
                    .map(|h| Some(Hist::Class(h)))
                    .collect()
            }
            Labels::Reg(y) => binned::accumulate_reg_parallel(&cols, rows, y)
                .into_iter()
                .map(|h| Some(Hist::Reg(h)))
                .collect(),
        };

        let left = &mut self.scratch.left_counts;
        let right = &mut self.scratch.right_counts;
        let codes_buf = &mut self.scratch.codes;
        let mut node_hists: Vec<(usize, Hist)> = Vec::with_capacity(k);
        let mut best: Option<Candidate> = None;
        for (feature, plan) in plans {
            let col = binned.column(feature);
            let hist = match plan {
                Plan::Sparse => {
                    let Labels::Class { y, n_classes } = labels else {
                        unreachable!("sparse scan is classification-only")
                    };
                    codes_buf.clear();
                    codes_buf.extend(rows.iter().map(|&r| (col.codes().get(r), y[r])));
                    self.sparse_scans += 1;
                    if let Some((bin, threshold, child_impurity)) =
                        scan_codes_class(codes_buf, n_classes, col, msl, left, right)
                    {
                        let gain = node_impurity - child_impurity;
                        if gain > 1e-12 && best.as_ref().is_none_or(|b| gain > b.gain) {
                            best = Some(Candidate {
                                feature,
                                threshold,
                                bin,
                                gain,
                            });
                        }
                    }
                    continue;
                }
                Plan::Ready(h) => h,
                Plan::Batched(idx) => batched[idx]
                    .take()
                    .expect("each batched histogram scans once"),
            };
            let scanned = match (&hist, labels) {
                (Hist::Class(h), Labels::Class { n_classes, .. }) => {
                    scan_hist_class(h, n_classes, col, msl, left, right)
                }
                (Hist::Reg(h), _) => scan_hist_reg(h, col, msl),
                _ => unreachable!("histogram kind matches label kind"),
            };
            if let Some((bin, threshold, child_impurity)) = scanned {
                let gain = node_impurity - child_impurity;
                if gain > 1e-12 && best.as_ref().is_none_or(|b| gain > b.gain) {
                    best = Some(Candidate {
                        feature,
                        threshold,
                        bin,
                        gain,
                    });
                }
            }
            node_hists.push((feature, hist));
        }
        (best, node_hists)
    }
}

/// Stable in-place partition: left-side rows keep their order at the
/// front, right-side rows (staged through `scratch`) keep theirs at the
/// back. Returns the left-side length.
fn stable_partition(
    rows: &mut [usize],
    scratch: &mut Vec<usize>,
    mut pred: impl FnMut(usize) -> bool,
) -> usize {
    scratch.clear();
    let mut write = 0;
    for i in 0..rows.len() {
        let r = rows[i];
        if pred(r) {
            rows[write] = r;
            write += 1;
        } else {
            scratch.push(r);
        }
    }
    rows[write..].copy_from_slice(scratch);
    write
}

/// Right sibling's histograms = parent's − left sibling's, for every
/// feature both nodes computed. Exact for class counts; deterministic for
/// regression sums.
fn subtract_siblings(parent: &[(usize, Hist)], left: Vec<(usize, Hist)>) -> Vec<(usize, Hist)> {
    let mut out = Vec::new();
    for (feature, lh) in left {
        if let Some((_, ph)) = parent.iter().find(|(f, _)| *f == feature) {
            match (ph, lh) {
                (Hist::Class(p), Hist::Class(l)) => {
                    out.push((feature, Hist::Class(binned::subtract_class(p, &l))));
                }
                (Hist::Reg(p), Hist::Reg(l)) => {
                    out.push((feature, Hist::Reg(binned::subtract_reg(p, &l))));
                }
                _ => unreachable!("sibling histograms share a kind"),
            }
        }
    }
    out
}

/// Scan sorted (value, row) pairs, returning the boundary threshold with
/// minimum weighted child impurity.
fn scan_sorted(
    labels: Labels,
    min_samples_leaf: usize,
    sorted: &[(f64, usize)],
    left: &mut Vec<usize>,
    right: &mut Vec<usize>,
) -> Option<(f64, f64)> {
    let n = sorted.len();
    match labels {
        Labels::Class { y, n_classes } => {
            left.clear();
            left.resize(n_classes, 0);
            right.clear();
            right.resize(n_classes, 0);
            for &(_, r) in sorted {
                right[y[r]] += 1;
            }
            let mut best: Option<(f64, f64)> = None;
            for i in 0..n - 1 {
                let c = y[sorted[i].1];
                left[c] += 1;
                right[c] -= 1;
                if sorted[i].0 == sorted[i + 1].0 {
                    continue; // can't split between equal values
                }
                let nl = i + 1;
                let nr = n - nl;
                if nl < min_samples_leaf || nr < min_samples_leaf {
                    continue;
                }
                let w = (nl as f64 * gini(left, nl) + nr as f64 * gini(right, nr)) / n as f64;
                if best.is_none_or(|(_, bw)| w < bw) {
                    best = Some((midpoint(sorted[i].0, sorted[i + 1].0), w));
                }
            }
            best
        }
        Labels::Reg(y) => {
            let total_sum: f64 = sorted.iter().map(|&(_, r)| y[r]).sum();
            let total_sumsq: f64 = sorted.iter().map(|&(_, r)| y[r] * y[r]).sum();
            let mut lsum = 0.0;
            let mut lsumsq = 0.0;
            let mut best: Option<(f64, f64)> = None;
            for i in 0..n - 1 {
                let v = y[sorted[i].1];
                lsum += v;
                lsumsq += v * v;
                if sorted[i].0 == sorted[i + 1].0 {
                    continue;
                }
                let nl = (i + 1) as f64;
                let nr = (n - i - 1) as f64;
                if (i + 1) < min_samples_leaf || (n - i - 1) < min_samples_leaf {
                    continue;
                }
                let lvar = (lsumsq / nl - (lsum / nl) * (lsum / nl)).max(0.0);
                let rsum = total_sum - lsum;
                let rsumsq = total_sumsq - lsumsq;
                let rvar = (rsumsq / nr - (rsum / nr) * (rsum / nr)).max(0.0);
                let w = (nl * lvar + nr * rvar) / n as f64;
                if best.is_none_or(|(_, bw)| w < bw) {
                    best = Some((midpoint(sorted[i].0, sorted[i + 1].0), w));
                }
            }
            best
        }
    }
}

/// Scan a class histogram's bin boundaries, returning `(bin, threshold,
/// weighted child impurity)` of the best boundary.
///
/// Boundary enumeration mirrors the sorted scan exactly: a boundary is
/// considered only after a non-empty bin with rows remaining on the
/// right, Gini is computed from the same integer counts through the same
/// float expressions, and ties keep the first minimum — so with one bin
/// per distinct value this chooses bit-identical splits.
/// Scan a class histogram's bin boundaries, returning `(bin, threshold,
/// weighted child impurity)` of the best boundary.
///
/// Boundary enumeration mirrors the sorted scan exactly: a boundary is
/// considered only after a non-empty bin with rows remaining on the
/// right, Gini is computed from the same integer counts through the same
/// float expressions, and ties keep the first minimum — so with one bin
/// per distinct value this path chooses bit-identical splits.
fn scan_hist_class(
    hist: &[u32],
    n_classes: usize,
    col: &binned::BinnedColumn,
    min_samples_leaf: usize,
    left: &mut Vec<usize>,
    right: &mut Vec<usize>,
) -> Option<(usize, f64, f64)> {
    let n_bins = col.n_bins();
    debug_assert_eq!(hist.len(), n_bins * n_classes);
    left.clear();
    left.resize(n_classes, 0);
    right.clear();
    right.resize(n_classes, 0);
    let mut n = 0usize;
    for b in 0..n_bins {
        for c in 0..n_classes {
            let v = hist[b * n_classes + c] as usize;
            right[c] += v;
            n += v;
        }
    }
    let mut best: Option<(usize, f64, f64)> = None;
    let mut nl = 0usize;
    for b in 0..n_bins - 1 {
        let mut bin_n = 0usize;
        for c in 0..n_classes {
            let v = hist[b * n_classes + c] as usize;
            left[c] += v;
            right[c] -= v;
            bin_n += v;
        }
        nl += bin_n;
        if bin_n == 0 {
            continue; // empty bin: same partition as the previous boundary
        }
        let nr = n - nl;
        if nr == 0 {
            break; // nothing right of here; no further boundary is valid
        }
        if nl < min_samples_leaf || nr < min_samples_leaf {
            continue;
        }
        let w = (nl as f64 * gini(left, nl) + nr as f64 * gini(right, nr)) / n as f64;
        if best.is_none_or(|(_, _, bw)| w < bw) {
            best = Some((b, col.threshold(b), w));
        }
    }
    best
}

/// Sorted-codes boundary scan for nodes smaller than the bin count:
/// instead of allocating, zeroing and walking a dense `n_bins ×
/// n_classes` histogram, sort the node's `(code, class)` pairs and walk
/// the runs. Each run end is exactly a boundary the dense scan finds
/// non-empty, the integer count state there is identical, and the `w`
/// expression is shared — so the result is bit-identical to
/// [`scan_hist_class`] at `O(rows log rows)` instead of `O(n_bins)`.
/// (Classification only: regression sums are order-sensitive floats,
/// so the dense accumulation stays the one canonical order.)
fn scan_codes_class(
    codes: &mut [(usize, usize)],
    n_classes: usize,
    col: &binned::BinnedColumn,
    min_samples_leaf: usize,
    left: &mut Vec<usize>,
    right: &mut Vec<usize>,
) -> Option<(usize, f64, f64)> {
    let n = codes.len();
    left.clear();
    left.resize(n_classes, 0);
    right.clear();
    right.resize(n_classes, 0);
    for &(_, c) in codes.iter() {
        right[c] += 1;
    }
    // Unstable sort is fine: equal (code, class) pairs are
    // indistinguishable to the integer counts.
    codes.sort_unstable();
    let mut best: Option<(usize, f64, f64)> = None;
    let mut nl = 0usize;
    let mut i = 0;
    while i < n {
        let b = codes[i].0;
        while i < n && codes[i].0 == b {
            let c = codes[i].1;
            left[c] += 1;
            right[c] -= 1;
            nl += 1;
            i += 1;
        }
        let nr = n - nl;
        if nr == 0 {
            break; // last run; boundary n_bins-1 is never a split
        }
        if nl < min_samples_leaf || nr < min_samples_leaf {
            continue;
        }
        let w = (nl as f64 * gini(left, nl) + nr as f64 * gini(right, nr)) / n as f64;
        if best.is_none_or(|(_, _, bw)| w < bw) {
            best = Some((b, col.threshold(b), w));
        }
    }
    best
}

/// Scan a regression histogram's bin boundaries, returning `(bin,
/// threshold, weighted child variance)` of the best boundary.
fn scan_hist_reg(
    hist: &[RegBin],
    col: &binned::BinnedColumn,
    min_samples_leaf: usize,
) -> Option<(usize, f64, f64)> {
    let n_bins = col.n_bins();
    debug_assert_eq!(hist.len(), n_bins);
    let mut n = 0usize;
    let mut total_sum = 0.0;
    let mut total_sumsq = 0.0;
    for b in hist {
        n += b.n as usize;
        total_sum += b.sum;
        total_sumsq += b.sumsq;
    }
    let mut best: Option<(usize, f64, f64)> = None;
    let mut nl = 0usize;
    let mut lsum = 0.0;
    let mut lsumsq = 0.0;
    for (b, bin) in hist.iter().enumerate().take(n_bins - 1) {
        nl += bin.n as usize;
        lsum += bin.sum;
        lsumsq += bin.sumsq;
        if bin.n == 0 {
            continue;
        }
        let nr = n - nl;
        if nr == 0 {
            break;
        }
        if nl < min_samples_leaf || nr < min_samples_leaf {
            continue;
        }
        let nlf = nl as f64;
        let nrf = nr as f64;
        let lvar = (lsumsq / nlf - (lsum / nlf) * (lsum / nlf)).max(0.0);
        let rsum = total_sum - lsum;
        let rsumsq = total_sumsq - lsumsq;
        let rvar = (rsumsq / nrf - (rsum / nrf) * (rsum / nrf)).max(0.0);
        let w = (nlf * lvar + nrf * rvar) / n as f64;
        if best.is_none_or(|(_, _, bw)| w < bw) {
            best = Some((b, col.threshold(b), w));
        }
    }
    best
}

fn gini(counts: &[usize], n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let n = n as f64;
    1.0 - counts
        .iter()
        .map(|&c| {
            let p = c as f64 / n;
            p * p
        })
        .sum::<f64>()
}

fn midpoint(a: f64, b: f64) -> f64 {
    a + (b - a) / 2.0
}

/// A CART classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTreeClassifier {
    /// Hyper-parameters used at fit time.
    pub config: TreeConfig,
    tree: Option<Tree>,
    n_classes: usize,
}

impl DecisionTreeClassifier {
    /// New unfitted classifier.
    pub fn new(config: TreeConfig) -> Self {
        Self {
            config,
            tree: None,
            n_classes: 0,
        }
    }

    /// Fit on column-major features and class labels in `0..n_classes`.
    /// With [`SplitMethod::Histogram`] the features are quantised first
    /// (through the process-wide bin cache).
    pub fn fit(&mut self, x: &[Vec<f64>], y: &[usize], n_classes: usize) -> Result<()> {
        if n_classes == 0 {
            return Err(LearnError::InvalidParam("n_classes must be > 0".into()));
        }
        self.config.validate()?;
        let labels = Labels::Class { y, n_classes };
        self.tree = Some(match self.config.split {
            SplitMethod::Exact => {
                Builder::build(Data::Exact(x), (0..y.len()).collect(), labels, self.config)?
            }
            SplitMethod::Histogram => {
                let binned = BinnedDataset::build_cached(x, self.config.max_bins)?;
                Builder::build(
                    Data::Binned(&binned),
                    (0..y.len()).collect(),
                    labels,
                    self.config,
                )?
            }
        });
        self.n_classes = n_classes;
        Ok(())
    }

    /// Fit on a pre-binned dataset, training only on `rows` (which may
    /// repeat indices — bootstrap draws count multiply, exactly as they
    /// would in a gathered sub-matrix). `y` spans the full dataset.
    pub fn fit_binned(
        &mut self,
        binned: &BinnedDataset,
        rows: &[usize],
        y: &[usize],
        n_classes: usize,
    ) -> Result<()> {
        if n_classes == 0 {
            return Err(LearnError::InvalidParam("n_classes must be > 0".into()));
        }
        self.tree = Some(Builder::build(
            Data::Binned(binned),
            rows.to_vec(),
            Labels::Class { y, n_classes },
            self.config,
        )?);
        self.n_classes = n_classes;
        Ok(())
    }

    /// Predict class labels for column-major features.
    pub fn predict(&self, x: &[Vec<f64>]) -> Result<Vec<usize>> {
        Ok(self
            .predict_proba(x)?
            .into_iter()
            .map(|p| argmax(&p))
            .collect())
    }

    /// Per-row class probability estimates (leaf class frequencies).
    pub fn predict_proba(&self, x: &[Vec<f64>]) -> Result<Vec<Vec<f64>>> {
        let tree = self
            .tree
            .as_ref()
            .ok_or(LearnError::NotFitted("DecisionTreeClassifier"))?;
        check_predict_input(x, tree.n_features)?;
        let n_rows = x.first().map_or(0, |c| c.len());
        let mut out = Vec::with_capacity(n_rows);
        for row in 0..n_rows {
            match tree.leaf_for_row(x, row) {
                Target::ClassCounts(counts) => {
                    let total: f64 = counts.iter().sum::<f64>().max(1.0);
                    out.push(counts.iter().map(|c| c / total).collect());
                }
                Target::Mean(_) => unreachable!("classifier tree has class leaves"),
            }
        }
        Ok(out)
    }

    /// The fitted tree, if any.
    pub fn tree(&self) -> Option<&Tree> {
        self.tree.as_ref()
    }
}

/// A CART regressor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTreeRegressor {
    /// Hyper-parameters used at fit time.
    pub config: TreeConfig,
    tree: Option<Tree>,
}

impl DecisionTreeRegressor {
    /// New unfitted regressor.
    pub fn new(config: TreeConfig) -> Self {
        Self { config, tree: None }
    }

    /// Fit on column-major features and real-valued targets. With
    /// [`SplitMethod::Histogram`] the features are quantised first
    /// (through the process-wide bin cache).
    pub fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<()> {
        self.config.validate()?;
        self.tree = Some(match self.config.split {
            SplitMethod::Exact => Builder::build(
                Data::Exact(x),
                (0..y.len()).collect(),
                Labels::Reg(y),
                self.config,
            )?,
            SplitMethod::Histogram => {
                let binned = BinnedDataset::build_cached(x, self.config.max_bins)?;
                Builder::build(
                    Data::Binned(&binned),
                    (0..y.len()).collect(),
                    Labels::Reg(y),
                    self.config,
                )?
            }
        });
        Ok(())
    }

    /// Fit on a pre-binned dataset, training only on `rows` (duplicates
    /// count multiply). `y` spans the full dataset.
    pub fn fit_binned(&mut self, binned: &BinnedDataset, rows: &[usize], y: &[f64]) -> Result<()> {
        self.tree = Some(Builder::build(
            Data::Binned(binned),
            rows.to_vec(),
            Labels::Reg(y),
            self.config,
        )?);
        Ok(())
    }

    /// Predict targets for column-major features.
    pub fn predict(&self, x: &[Vec<f64>]) -> Result<Vec<f64>> {
        let tree = self
            .tree
            .as_ref()
            .ok_or(LearnError::NotFitted("DecisionTreeRegressor"))?;
        check_predict_input(x, tree.n_features)?;
        let n_rows = x.first().map_or(0, |c| c.len());
        let mut out = Vec::with_capacity(n_rows);
        for row in 0..n_rows {
            match tree.leaf_for_row(x, row) {
                Target::Mean(m) => out.push(*m),
                Target::ClassCounts(_) => unreachable!("regressor tree has mean leaves"),
            }
        }
        Ok(out)
    }

    /// The fitted tree, if any.
    pub fn tree(&self) -> Option<&Tree> {
        self.tree.as_ref()
    }
}

fn check_predict_input(x: &[Vec<f64>], fitted: usize) -> Result<()> {
    if x.len() != fitted {
        return Err(LearnError::DimensionMismatch {
            fitted,
            got: x.len(),
        });
    }
    Ok(())
}

pub(crate) fn argmax(v: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in v.iter().enumerate() {
        if x > v[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// XOR-ish separable data: class = (a > 0) != (b > 0).
    fn xor_data(n: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut a = Vec::new();
        let mut b = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let av = if i % 2 == 0 { 1.0 } else { -1.0 } * (1.0 + (i % 5) as f64);
            let bv = if (i / 2) % 2 == 0 { 1.0 } else { -1.0 } * (1.0 + (i % 7) as f64);
            a.push(av);
            b.push(bv);
            y.push(usize::from((av > 0.0) != (bv > 0.0)));
        }
        (vec![a, b], y)
    }

    fn hist_config() -> TreeConfig {
        TreeConfig {
            split: SplitMethod::Histogram,
            ..Default::default()
        }
    }

    #[test]
    fn classifier_learns_xor() {
        let (x, y) = xor_data(64);
        let mut t = DecisionTreeClassifier::new(TreeConfig::default());
        t.fit(&x, &y, 2).unwrap();
        assert_eq!(t.predict(&x).unwrap(), y);
    }

    #[test]
    fn hist_classifier_learns_xor() {
        let (x, y) = xor_data(64);
        let mut t = DecisionTreeClassifier::new(hist_config());
        t.fit(&x, &y, 2).unwrap();
        assert_eq!(t.predict(&x).unwrap(), y);
    }

    #[test]
    fn hist_matches_exact_when_bins_cover_distinct_values() {
        // Every feature has far fewer distinct values than max_bins, so
        // histogram split finding sees exactly the exact path's boundaries
        // and must grow an identical tree (same splits, same train
        // predictions, bit-identical importances).
        let (x, y) = xor_data(128);
        let mut exact = DecisionTreeClassifier::new(TreeConfig::default());
        exact.fit(&x, &y, 2).unwrap();
        let mut hist = DecisionTreeClassifier::new(hist_config());
        hist.fit(&x, &y, 2).unwrap();
        assert_eq!(exact.predict(&x).unwrap(), hist.predict(&x).unwrap());
        let ei = exact.tree().unwrap().feature_importances();
        let hi = hist.tree().unwrap().feature_importances();
        for (a, b) in ei.iter().zip(&hi) {
            assert_eq!(a.to_bits(), b.to_bits(), "importances must be bit-equal");
        }
        assert_eq!(
            exact.tree().unwrap().n_nodes(),
            hist.tree().unwrap().n_nodes()
        );
    }

    #[test]
    fn fit_binned_duplicate_rows_match_gathered_fit() {
        // Training on rows [0,0,1,2,...] through fit_binned must equal
        // exact training on the gathered (duplicated) sub-matrix.
        let (x, y) = xor_data(32);
        let rows: Vec<usize> = (0..32).chain(0..8).collect();
        let gx: Vec<Vec<f64>> = x
            .iter()
            .map(|c| rows.iter().map(|&r| c[r]).collect())
            .collect();
        let gy: Vec<usize> = rows.iter().map(|&r| y[r]).collect();
        let mut exact = DecisionTreeClassifier::new(TreeConfig::default());
        exact.fit(&gx, &gy, 2).unwrap();
        let binned = BinnedDataset::build(&x, DEFAULT_MAX_BINS).unwrap();
        let mut hist = DecisionTreeClassifier::new(hist_config());
        hist.fit_binned(&binned, &rows, &y, 2).unwrap();
        assert_eq!(exact.predict(&gx).unwrap(), hist.predict(&gx).unwrap());
    }

    #[test]
    fn hist_regressor_fits_step_function() {
        let x = vec![(0..100).map(|i| i as f64).collect::<Vec<_>>()];
        let y: Vec<f64> = (0..100).map(|i| if i < 50 { 1.0 } else { 5.0 }).collect();
        let mut t = DecisionTreeRegressor::new(hist_config());
        t.fit(&x, &y).unwrap();
        let preds = t.predict(&x).unwrap();
        for (p, t) in preds.iter().zip(&y) {
            assert!((p - t).abs() < 1e-9);
        }
    }

    #[test]
    fn hist_rejects_invalid_max_bins() {
        let (x, y) = xor_data(16);
        let mut t = DecisionTreeClassifier::new(TreeConfig {
            max_bins: 1,
            ..hist_config()
        });
        assert!(t.fit(&x, &y, 2).is_err());
    }

    #[test]
    fn pure_node_is_leaf() {
        let x = vec![vec![1.0, 2.0, 3.0]];
        let y = vec![1, 1, 1];
        let mut t = DecisionTreeClassifier::new(TreeConfig::default());
        t.fit(&x, &y, 2).unwrap();
        assert_eq!(t.tree().unwrap().n_nodes(), 1);
        assert_eq!(t.predict(&x).unwrap(), y);
    }

    #[test]
    fn depth_zero_predicts_majority() {
        let (x, y) = xor_data(40);
        let cfg = TreeConfig {
            max_depth: 0,
            ..Default::default()
        };
        let mut t = DecisionTreeClassifier::new(cfg);
        t.fit(&x, &y, 2).unwrap();
        let preds = t.predict(&x).unwrap();
        assert!(preds.iter().all(|&p| p == preds[0]));
    }

    #[test]
    fn regressor_fits_step_function() {
        let x = vec![(0..100).map(|i| i as f64).collect::<Vec<_>>()];
        let y: Vec<f64> = (0..100).map(|i| if i < 50 { 1.0 } else { 5.0 }).collect();
        let mut t = DecisionTreeRegressor::new(TreeConfig::default());
        t.fit(&x, &y).unwrap();
        let preds = t.predict(&x).unwrap();
        for (p, t) in preds.iter().zip(&y) {
            assert!((p - t).abs() < 1e-9);
        }
    }

    #[test]
    fn regressor_constant_target_single_leaf() {
        let x = vec![vec![1.0, 2.0, 3.0, 4.0]];
        let y = vec![7.0; 4];
        let mut t = DecisionTreeRegressor::new(TreeConfig::default());
        t.fit(&x, &y).unwrap();
        assert_eq!(t.tree().unwrap().n_nodes(), 1);
        assert_eq!(t.predict(&x).unwrap(), y);
    }

    #[test]
    fn min_samples_leaf_enforced() {
        let (x, y) = xor_data(16);
        let cfg = TreeConfig {
            min_samples_leaf: 20, // larger than half the data → no split legal
            ..Default::default()
        };
        let mut t = DecisionTreeClassifier::new(cfg);
        t.fit(&x, &y, 2).unwrap();
        assert_eq!(t.tree().unwrap().n_nodes(), 1);
    }

    #[test]
    fn importances_sum_to_one_when_split() {
        let (x, y) = xor_data(64);
        let mut t = DecisionTreeClassifier::new(TreeConfig::default());
        t.fit(&x, &y, 2).unwrap();
        let imp = t.tree().unwrap().feature_importances();
        assert_eq!(imp.len(), 2);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Both XOR features matter.
        assert!(imp.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn errors_on_empty_and_mismatched_input() {
        let mut t = DecisionTreeClassifier::new(TreeConfig::default());
        assert!(t.fit(&[], &[], 2).is_err());
        assert!(t.fit(&[vec![1.0, 2.0]], &[0], 2).is_err());
        assert!(t.predict(&[vec![1.0]]).is_err()); // not fitted
        let (x, y) = xor_data(8);
        t.fit(&x, &y, 2).unwrap();
        assert!(t.predict(&[vec![1.0]]).is_err()); // wrong dimension
    }

    #[test]
    fn probabilities_are_distributions() {
        let (x, y) = xor_data(32);
        let cfg = TreeConfig {
            max_depth: 1,
            ..Default::default()
        };
        let mut t = DecisionTreeClassifier::new(cfg);
        t.fit(&x, &y, 2).unwrap();
        for p in t.predict_proba(&x).unwrap() {
            assert_eq!(p.len(), 2);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn ties_in_feature_values_are_respected() {
        // Feature has duplicate values at the would-be boundary; the tree
        // must not split between equal values.
        let x = vec![vec![1.0, 1.0, 1.0, 2.0]];
        let y = vec![0, 0, 1, 1];
        let mut t = DecisionTreeClassifier::new(TreeConfig::default());
        t.fit(&x, &y, 2).unwrap();
        let preds = t.predict(&x).unwrap();
        // Rows with value 1.0 share a leaf → same prediction.
        assert_eq!(preds[0], preds[1]);
        assert_eq!(preds[1], preds[2]);
        assert_eq!(preds[3], 1);
    }
}
