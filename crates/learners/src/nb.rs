//! Gaussian Naive Bayes — the "NB" downstream task of the paper's Table V.

use crate::error::{LearnError, Result};
use crate::tree::argmax;
use serde::{Deserialize, Serialize};

/// Gaussian Naive Bayes classifier with per-class feature means/variances
/// and Laplace-style variance smoothing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaussianNb {
    /// Added to every variance for numerical stability (sklearn's
    /// `var_smoothing` applied as an absolute floor).
    pub var_smoothing: f64,
    class_log_prior: Vec<f64>,
    /// `means[c][feature]`.
    means: Vec<Vec<f64>>,
    /// `vars[c][feature]`.
    vars: Vec<Vec<f64>>,
}

impl Default for GaussianNb {
    fn default() -> Self {
        Self::new(1e-9)
    }
}

impl GaussianNb {
    /// New unfitted model with the given variance smoothing.
    pub fn new(var_smoothing: f64) -> Self {
        Self {
            var_smoothing,
            class_log_prior: Vec::new(),
            means: Vec::new(),
            vars: Vec::new(),
        }
    }

    /// Fit on column-major features and class labels.
    pub fn fit(&mut self, x: &[Vec<f64>], y: &[usize], n_classes: usize) -> Result<()> {
        if x.is_empty() || y.is_empty() {
            return Err(LearnError::EmptyTrainingSet("gaussian naive bayes".into()));
        }
        if n_classes < 2 {
            return Err(LearnError::InvalidParam("need at least 2 classes".into()));
        }
        let n_rows = y.len();
        for col in x {
            if col.len() != n_rows {
                return Err(LearnError::InvalidParam(
                    "feature/label length mismatch".into(),
                ));
            }
        }
        let n_features = x.len();
        let mut counts = vec![0usize; n_classes];
        let mut sums = vec![vec![0.0; n_features]; n_classes];
        let mut sumsqs = vec![vec![0.0; n_features]; n_classes];
        for (i, &c) in y.iter().enumerate() {
            if c >= n_classes {
                return Err(LearnError::InvalidParam(format!("class {c} out of range")));
            }
            counts[c] += 1;
            for (j, col) in x.iter().enumerate() {
                sums[c][j] += col[i];
                sumsqs[c][j] += col[i] * col[i];
            }
        }
        // Global max variance scales the smoothing floor, as in sklearn.
        let mut max_var: f64 = 0.0;
        for col in x {
            let m = col.iter().sum::<f64>() / n_rows as f64;
            let v = col.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n_rows as f64;
            max_var = max_var.max(v);
        }
        let floor = self.var_smoothing * max_var.max(1.0);

        self.class_log_prior = counts
            .iter()
            .map(|&c| ((c.max(1)) as f64 / n_rows as f64).ln())
            .collect();
        self.means = Vec::with_capacity(n_classes);
        self.vars = Vec::with_capacity(n_classes);
        for c in 0..n_classes {
            let n = counts[c].max(1) as f64;
            let mean: Vec<f64> = sums[c].iter().map(|s| s / n).collect();
            let var: Vec<f64> = sumsqs[c]
                .iter()
                .zip(&mean)
                .map(|(sq, m)| (sq / n - m * m).max(0.0) + floor)
                .collect();
            self.means.push(mean);
            self.vars.push(var);
        }
        Ok(())
    }

    /// Per-row log joint likelihood for each class.
    fn joint_log_likelihood(&self, x: &[Vec<f64>], row: usize) -> Vec<f64> {
        let k = self.class_log_prior.len();
        (0..k)
            .map(|c| {
                let mut ll = self.class_log_prior[c];
                for (j, col) in x.iter().enumerate() {
                    let v = col[row];
                    let mean = self.means[c][j];
                    let var = self.vars[c][j];
                    ll += -0.5
                        * ((2.0 * std::f64::consts::PI * var).ln() + (v - mean) * (v - mean) / var);
                }
                ll
            })
            .collect()
    }

    /// Class predictions.
    pub fn predict(&self, x: &[Vec<f64>]) -> Result<Vec<usize>> {
        if self.means.is_empty() {
            return Err(LearnError::NotFitted("GaussianNb"));
        }
        if x.len() != self.means[0].len() {
            return Err(LearnError::DimensionMismatch {
                fitted: self.means[0].len(),
                got: x.len(),
            });
        }
        let n_rows = x.first().map_or(0, |c| c.len());
        Ok((0..n_rows)
            .map(|row| argmax(&self.joint_log_likelihood(x, row)))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn gaussian_blobs(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = Vec::new();
        let mut b = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let c = i % 2;
            let center = if c == 0 { -2.0 } else { 2.0 };
            a.push(center + rng.gen_range(-1.0..1.0));
            b.push(-center + rng.gen_range(-1.0..1.0));
            y.push(c);
        }
        (vec![a, b], y)
    }

    #[test]
    fn separates_gaussian_blobs() {
        let (x, y) = gaussian_blobs(200, 1);
        let mut m = GaussianNb::default();
        m.fit(&x, &y, 2).unwrap();
        let acc = accuracy(&y, &m.predict(&x).unwrap()).unwrap();
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn respects_class_priors_on_ambiguous_points() {
        // 90% of points are class 0; an ambiguous mid-point should lean 0.
        let mut a = vec![0.0; 90];
        a.extend(vec![0.2; 10]);
        let y: Vec<usize> = (0..100).map(|i| usize::from(i >= 90)).collect();
        let mut m = GaussianNb::new(1e-2);
        m.fit(&[a], &y, 2).unwrap();
        let pred = m.predict(&[vec![0.1]]).unwrap();
        assert_eq!(pred[0], 0);
    }

    #[test]
    fn constant_feature_does_not_crash() {
        let x = vec![vec![1.0; 10], vec![5.0; 10]];
        let y: Vec<usize> = (0..10).map(|i| i % 2).collect();
        let mut m = GaussianNb::default();
        m.fit(&x, &y, 2).unwrap();
        let preds = m.predict(&x).unwrap();
        assert_eq!(preds.len(), 10);
        assert!(preds.iter().all(|&p| p < 2));
    }

    #[test]
    fn errors_on_bad_input() {
        let mut m = GaussianNb::default();
        assert!(m.fit(&[], &[], 2).is_err());
        assert!(m.fit(&[vec![1.0]], &[0], 1).is_err());
        assert!(m.fit(&[vec![1.0]], &[5], 2).is_err());
        assert!(m.predict(&[vec![1.0]]).is_err());
        m.fit(&[vec![1.0, 2.0]], &[0, 1], 2).unwrap();
        assert!(m.predict(&[vec![1.0], vec![2.0]]).is_err());
    }

    #[test]
    fn multiclass_blobs() {
        let mut xs = Vec::new();
        let mut y = Vec::new();
        let mut rng = StdRng::seed_from_u64(2);
        for i in 0..150 {
            let c = i % 3;
            xs.push(c as f64 * 10.0 + rng.gen_range(-1.0..1.0));
            y.push(c);
        }
        let mut m = GaussianNb::default();
        m.fit(&[xs.clone()], &y, 3).unwrap();
        let acc = accuracy(&y, &m.predict(&[xs]).unwrap()).unwrap();
        assert!(acc > 0.95);
    }
}
