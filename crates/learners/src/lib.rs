//! # learners
//!
//! From-scratch machine-learning substrate for the E-AFE reproduction.
//! Everything the paper's evaluation pipeline needs, with no external ML
//! dependencies:
//!
//! - [`forest`] — Random Forests, the paper's downstream evaluation task;
//! - [`tree`] — the underlying CART trees (exact and histogram split
//!   finding);
//! - [`binned`] — quantile feature binning shared by trees, forests, and
//!   CV folds;
//! - [`linear`] — logistic regression (the FPE binary classifier) and a
//!   linear SVM (Table V);
//! - [`nb`] — Gaussian Naive Bayes (Table V);
//! - [`gp`] — Gaussian Process regression (Table V);
//! - [`mlp`] — multi-layer perceptron (Table V);
//! - [`resnet`] — RTDL-style tabular ResNet (the `RTDL_N` baseline);
//! - [`dense`] — flat batched dense kernels and the shared training
//!   driver behind the MLP/ResNet heads (DESIGN.md §10);
//! - [`metrics`] — F1, precision/recall, 1-RAE;
//! - [`cv`] — the cross-validated downstream score `A_T(F, y)`.

#![warn(missing_docs)]

pub mod binned;
pub mod cv;
pub mod dense;
pub mod error;
pub mod forest;
pub mod gp;
pub mod linalg;
pub mod linear;
pub mod metrics;
pub mod mlp;
pub mod nb;
pub mod nn;
pub mod preprocess;
pub mod resnet;
pub mod tree;

pub use binned::{BinnedColumn, BinnedDataset, SplitMethod, DEFAULT_MAX_BINS};
pub use cv::{feature_matrix, Evaluator, ModelKind};
pub use dense::{FlatNet, Mat, NnBackend, Topology};
pub use error::{LearnError, Result};
pub use forest::{ForestConfig, RandomForestClassifier, RandomForestRegressor};
pub use gp::{GaussianProcess, GpConfig};
pub use linalg::SquareMatrix;
pub use linear::{LinearConfig, LinearSvm, LogisticRegression};
pub use metrics::{accuracy, f1_score, one_minus_rae};
pub use mlp::{MlpClassifier, MlpConfig, MlpRegressor};
pub use nb::GaussianNb;
pub use resnet::{ResNetClassifier, ResNetConfig, ResNetRegressor};
pub use tree::{DecisionTreeClassifier, DecisionTreeRegressor, TreeConfig};
