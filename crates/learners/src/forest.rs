//! Random Forests — the downstream evaluation task the paper uses for both
//! AFE training ("we utilize Random Forest as the model for downstream
//! tasks") and for the RF-importance feature pre-selection step.
//!
//! Trees are trained on bootstrap resamples with √N feature subsampling and
//! fitted in parallel through the shared `runtime` worker pool. Per-tree
//! seeds and bootstrap rows are drawn sequentially up front, so the fitted
//! forest is bit-identical under any thread count.

use crate::binned::{BinnedDataset, SplitMethod};
use crate::error::{LearnError, Result};
use crate::tree::{argmax, DecisionTreeClassifier, DecisionTreeRegressor, TreeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use runtime::WorkerPool;
use serde::{Deserialize, Serialize};

/// Forest hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree configuration; `max_features = None` here means "use √N".
    pub tree: TreeConfig,
    /// Bootstrap resampling on/off.
    pub bootstrap: bool,
    /// Master seed; per-tree seeds derive from it.
    pub seed: u64,
    /// Number of worker threads; `0` defers to the runtime's process-wide
    /// ceiling (`runtime::global_threads()`).
    pub n_threads: usize,
}

impl Default for ForestConfig {
    fn default() -> Self {
        Self {
            n_trees: 20,
            tree: TreeConfig::default(),
            bootstrap: true,
            seed: 0,
            n_threads: 0,
        }
    }
}

impl ForestConfig {
    /// A smaller, faster configuration for inner-loop feature evaluation.
    /// Uses histogram split finding: the engine's and FPE's inner loops
    /// re-evaluate overlapping feature sets constantly, exactly the
    /// bin-once-train-everywhere regime.
    pub fn fast() -> Self {
        Self {
            n_trees: 10,
            tree: TreeConfig {
                max_depth: 8,
                split: SplitMethod::Histogram,
                ..TreeConfig::default()
            },
            ..Self::default()
        }
    }

    fn sqrt_features(&self, n_features: usize) -> usize {
        ((n_features as f64).sqrt().round() as usize).clamp(1, n_features)
    }
}

/// Draw bootstrap row indices or the identity when bootstrap is disabled.
fn sample_rows(n_rows: usize, bootstrap: bool, rng: &mut StdRng) -> Vec<usize> {
    if bootstrap {
        (0..n_rows).map(|_| rng.gen_range(0..n_rows)).collect()
    } else {
        (0..n_rows).collect()
    }
}

/// Gather a column-major sub-matrix for the given rows.
fn gather(x: &[Vec<f64>], rows: &[usize]) -> Vec<Vec<f64>> {
    x.iter()
        .map(|col| rows.iter().map(|&r| col[r]).collect())
        .collect()
}

/// Quantise the training matrix through the process-wide bin cache,
/// timing the build under `forest.bin_us`.
fn bin_features(x: &[Vec<f64>], max_bins: usize) -> Result<BinnedDataset> {
    let _span = telemetry::span("forest.bin");
    let start = telemetry::enabled().then(std::time::Instant::now);
    let binned = BinnedDataset::build_cached(x, max_bins)?;
    if let Some(t) = start {
        telemetry::record("forest.bin_us", t.elapsed().as_micros() as u64);
    }
    Ok(binned)
}

/// Per-tree (seed, rows) draws, drawn sequentially up front so the fitted
/// forest never depends on worker scheduling. `rows` maps each draw into
/// the caller's training subset (identity for a full-dataset fit), so the
/// histogram path consumes the RNG exactly like the exact path does.
fn draw_trees(
    n_trees: usize,
    rows: &[usize],
    bootstrap: bool,
    rng: &mut StdRng,
) -> Vec<(u64, Vec<usize>)> {
    (0..n_trees)
        .map(|_| {
            let seed = rng.gen::<u64>();
            let draw = sample_rows(rows.len(), bootstrap, rng);
            (seed, draw.into_iter().map(|i| rows[i]).collect())
        })
        .collect()
}

/// Fit one tree per `(seed, rows)` draw through the shared runtime pool.
///
/// The draws carry all per-tree randomness, so results do not depend on
/// which worker runs which tree; the pool returns them in draw order.
fn fit_trees<M: Send, F: Fn(u64, &[usize]) -> Result<M> + Sync>(
    n_threads: usize,
    draws: Vec<(u64, Vec<usize>)>,
    fit_one: F,
) -> Result<Vec<M>> {
    let mut span = telemetry::span("forest.fit_trees");
    span.field("trees", draws.len() as f64);
    let pool = WorkerPool::new().with_threads(n_threads);
    pool.map(draws, |_ctx, (seed, rows)| fit_one(seed, &rows))
        .into_iter()
        .collect()
}

/// Random forest classifier (majority vote over per-tree class frequencies).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForestClassifier {
    /// Hyper-parameters used at fit time.
    pub config: ForestConfig,
    trees: Vec<DecisionTreeClassifier>,
    n_classes: usize,
    n_features: usize,
}

impl RandomForestClassifier {
    /// New unfitted forest.
    pub fn new(config: ForestConfig) -> Self {
        Self {
            config,
            trees: Vec::new(),
            n_classes: 0,
            n_features: 0,
        }
    }

    /// Fit on column-major features and class labels. With
    /// [`SplitMethod::Histogram`] the matrix is quantised once and shared
    /// (as an [`BinnedDataset`]) by every per-tree job.
    pub fn fit(&mut self, x: &[Vec<f64>], y: &[usize], n_classes: usize) -> Result<()> {
        if x.is_empty() || y.is_empty() {
            return Err(LearnError::EmptyTrainingSet("random forest".into()));
        }
        if self.config.tree.split == SplitMethod::Histogram {
            let binned = bin_features(x, self.config.tree.max_bins)?;
            let all: Vec<usize> = (0..y.len()).collect();
            return self.fit_binned(&binned, &all, y, n_classes);
        }
        let n_rows = y.len();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut tree_cfg = self.config.tree;
        if tree_cfg.max_features.is_none() {
            tree_cfg.max_features = Some(self.config.sqrt_features(x.len()));
        }
        let all: Vec<usize> = (0..n_rows).collect();
        let draws = draw_trees(self.config.n_trees, &all, self.config.bootstrap, &mut rng);
        self.trees = fit_trees(self.config.n_threads, draws, |seed, rows| {
            let cfg = TreeConfig { seed, ..tree_cfg };
            let xb = gather(x, rows);
            let yb: Vec<usize> = rows.iter().map(|&r| y[r]).collect();
            let mut t = DecisionTreeClassifier::new(cfg);
            t.fit(&xb, &yb, n_classes)?;
            Ok(t)
        })?;
        self.n_classes = n_classes;
        self.n_features = x.len();
        Ok(())
    }

    /// Fit on an already-binned dataset, training only on `rows` (e.g. a
    /// CV fold's train rows). Bootstrap draws are taken within `rows`;
    /// labels span the full dataset. No sub-matrix is gathered — every
    /// tree reads the shared bin codes directly.
    pub fn fit_binned(
        &mut self,
        binned: &BinnedDataset,
        rows: &[usize],
        y: &[usize],
        n_classes: usize,
    ) -> Result<()> {
        if binned.n_features() == 0 || rows.is_empty() || y.is_empty() {
            return Err(LearnError::EmptyTrainingSet("random forest".into()));
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut tree_cfg = self.config.tree;
        if tree_cfg.max_features.is_none() {
            tree_cfg.max_features = Some(self.config.sqrt_features(binned.n_features()));
        }
        let draws = draw_trees(self.config.n_trees, rows, self.config.bootstrap, &mut rng);
        self.trees = fit_trees(self.config.n_threads, draws, |seed, tree_rows| {
            let cfg = TreeConfig { seed, ..tree_cfg };
            let mut t = DecisionTreeClassifier::new(cfg);
            t.fit_binned(binned, tree_rows, y, n_classes)?;
            Ok(t)
        })?;
        self.n_classes = n_classes;
        self.n_features = binned.n_features();
        Ok(())
    }

    /// Averaged class probabilities across trees.
    pub fn predict_proba(&self, x: &[Vec<f64>]) -> Result<Vec<Vec<f64>>> {
        if self.trees.is_empty() {
            return Err(LearnError::NotFitted("RandomForestClassifier"));
        }
        let n_rows = x.first().map_or(0, |c| c.len());
        let mut acc = vec![vec![0.0; self.n_classes]; n_rows];
        for tree in &self.trees {
            for (row, p) in tree.predict_proba(x)?.into_iter().enumerate() {
                for (a, v) in acc[row].iter_mut().zip(p) {
                    *a += v;
                }
            }
        }
        let k = self.trees.len() as f64;
        for row in &mut acc {
            for v in row.iter_mut() {
                *v /= k;
            }
        }
        Ok(acc)
    }

    /// Majority-vote class predictions.
    pub fn predict(&self, x: &[Vec<f64>]) -> Result<Vec<usize>> {
        Ok(self
            .predict_proba(x)?
            .into_iter()
            .map(|p| argmax(&p))
            .collect())
    }

    /// Mean decrease-in-impurity feature importances, normalised to sum to 1.
    pub fn feature_importances(&self) -> Result<Vec<f64>> {
        if self.trees.is_empty() {
            return Err(LearnError::NotFitted("RandomForestClassifier"));
        }
        mean_importances(self.trees.iter().map(|t| {
            t.tree()
                .expect("fitted forest holds fitted trees")
                .feature_importances()
        }))
    }
}

/// Random forest regressor (mean over per-tree predictions).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForestRegressor {
    /// Hyper-parameters used at fit time.
    pub config: ForestConfig,
    trees: Vec<DecisionTreeRegressor>,
    n_features: usize,
}

impl RandomForestRegressor {
    /// New unfitted forest.
    pub fn new(config: ForestConfig) -> Self {
        Self {
            config,
            trees: Vec::new(),
            n_features: 0,
        }
    }

    /// Fit on column-major features and real targets. With
    /// [`SplitMethod::Histogram`] the matrix is quantised once and shared
    /// (as an [`BinnedDataset`]) by every per-tree job.
    pub fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<()> {
        if x.is_empty() || y.is_empty() {
            return Err(LearnError::EmptyTrainingSet("random forest".into()));
        }
        if self.config.tree.split == SplitMethod::Histogram {
            let binned = bin_features(x, self.config.tree.max_bins)?;
            let all: Vec<usize> = (0..y.len()).collect();
            return self.fit_binned(&binned, &all, y);
        }
        let n_rows = y.len();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut tree_cfg = self.config.tree;
        if tree_cfg.max_features.is_none() {
            // Regression forests conventionally use N/3 features.
            tree_cfg.max_features = Some((x.len() / 3).clamp(1, x.len()));
        }
        let all: Vec<usize> = (0..n_rows).collect();
        let draws = draw_trees(self.config.n_trees, &all, self.config.bootstrap, &mut rng);
        self.trees = fit_trees(self.config.n_threads, draws, |seed, rows| {
            let cfg = TreeConfig { seed, ..tree_cfg };
            let xb = gather(x, rows);
            let yb: Vec<f64> = rows.iter().map(|&r| y[r]).collect();
            let mut t = DecisionTreeRegressor::new(cfg);
            t.fit(&xb, &yb)?;
            Ok(t)
        })?;
        self.n_features = x.len();
        Ok(())
    }

    /// Fit on an already-binned dataset, training only on `rows` (e.g. a
    /// CV fold's train rows). Bootstrap draws are taken within `rows`;
    /// targets span the full dataset.
    pub fn fit_binned(&mut self, binned: &BinnedDataset, rows: &[usize], y: &[f64]) -> Result<()> {
        if binned.n_features() == 0 || rows.is_empty() || y.is_empty() {
            return Err(LearnError::EmptyTrainingSet("random forest".into()));
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut tree_cfg = self.config.tree;
        if tree_cfg.max_features.is_none() {
            let n_features = binned.n_features();
            tree_cfg.max_features = Some((n_features / 3).clamp(1, n_features));
        }
        let draws = draw_trees(self.config.n_trees, rows, self.config.bootstrap, &mut rng);
        self.trees = fit_trees(self.config.n_threads, draws, |seed, tree_rows| {
            let cfg = TreeConfig { seed, ..tree_cfg };
            let mut t = DecisionTreeRegressor::new(cfg);
            t.fit_binned(binned, tree_rows, y)?;
            Ok(t)
        })?;
        self.n_features = binned.n_features();
        Ok(())
    }

    /// Mean prediction across trees.
    pub fn predict(&self, x: &[Vec<f64>]) -> Result<Vec<f64>> {
        if self.trees.is_empty() {
            return Err(LearnError::NotFitted("RandomForestRegressor"));
        }
        let n_rows = x.first().map_or(0, |c| c.len());
        let mut acc = vec![0.0; n_rows];
        for tree in &self.trees {
            for (a, p) in acc.iter_mut().zip(tree.predict(x)?) {
                *a += p;
            }
        }
        let k = self.trees.len() as f64;
        for a in &mut acc {
            *a /= k;
        }
        Ok(acc)
    }

    /// Mean decrease-in-impurity feature importances, normalised to sum to 1.
    pub fn feature_importances(&self) -> Result<Vec<f64>> {
        if self.trees.is_empty() {
            return Err(LearnError::NotFitted("RandomForestRegressor"));
        }
        mean_importances(self.trees.iter().map(|t| {
            t.tree()
                .expect("fitted forest holds fitted trees")
                .feature_importances()
        }))
    }
}

fn mean_importances(per_tree: impl Iterator<Item = Vec<f64>>) -> Result<Vec<f64>> {
    let mut acc: Vec<f64> = Vec::new();
    let mut k = 0usize;
    for imp in per_tree {
        if acc.is_empty() {
            acc = vec![0.0; imp.len()];
        }
        for (a, v) in acc.iter_mut().zip(imp) {
            *a += v;
        }
        k += 1;
    }
    let total: f64 = acc.iter().sum();
    if total > 0.0 {
        for a in &mut acc {
            *a /= total;
        }
    }
    let _ = k;
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{accuracy, one_minus_rae};
    use rand::Rng;

    fn nonlinear_classification(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = Vec::new();
        let mut b = Vec::new();
        let mut noise = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let av: f64 = rng.gen_range(-2.0..2.0);
            let bv: f64 = rng.gen_range(-2.0..2.0);
            a.push(av);
            b.push(bv);
            noise.push(rng.gen_range(-1.0..1.0));
            y.push(usize::from(av * bv > 0.0));
        }
        (vec![a, b, noise], y)
    }

    #[test]
    fn classifier_beats_chance_on_product_rule() {
        let (x, y) = nonlinear_classification(400, 1);
        let mut f = RandomForestClassifier::new(ForestConfig::default());
        f.fit(&x, &y, 2).unwrap();
        let acc = accuracy(&y, &f.predict(&x).unwrap()).unwrap();
        assert!(acc > 0.9, "train accuracy {acc}");
    }

    #[test]
    fn classifier_generalizes() {
        let (xtr, ytr) = nonlinear_classification(600, 2);
        let (xte, yte) = nonlinear_classification(200, 3);
        let mut f = RandomForestClassifier::new(ForestConfig::default());
        f.fit(&xtr, &ytr, 2).unwrap();
        let acc = accuracy(&yte, &f.predict(&xte).unwrap()).unwrap();
        assert!(acc > 0.8, "test accuracy {acc}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = nonlinear_classification(200, 4);
        let mut f1 = RandomForestClassifier::new(ForestConfig::default());
        let mut f2 = RandomForestClassifier::new(ForestConfig::default());
        f1.fit(&x, &y, 2).unwrap();
        f2.fit(&x, &y, 2).unwrap();
        assert_eq!(f1.predict(&x).unwrap(), f2.predict(&x).unwrap());
    }

    #[test]
    fn importances_favour_signal_features() {
        let (x, y) = nonlinear_classification(400, 5);
        let mut f = RandomForestClassifier::new(ForestConfig::default());
        f.fit(&x, &y, 2).unwrap();
        let imp = f.feature_importances().unwrap();
        assert_eq!(imp.len(), 3);
        // Noise column (index 2) should matter least.
        assert!(imp[2] < imp[0] && imp[2] < imp[1], "importances {imp:?}");
    }

    #[test]
    fn regressor_fits_smooth_function() {
        let mut rng = StdRng::seed_from_u64(6);
        let xs: Vec<f64> = (0..300).map(|_| rng.gen_range(-3.0..3.0)).collect();
        let y: Vec<f64> = xs.iter().map(|v| v * v + 0.1 * v).collect();
        let x = vec![xs];
        let mut f = RandomForestRegressor::new(ForestConfig::default());
        f.fit(&x, &y).unwrap();
        let score = one_minus_rae(&y, &f.predict(&x).unwrap()).unwrap();
        assert!(score > 0.9, "1-rae {score}");
    }

    #[test]
    fn proba_rows_sum_to_one() {
        let (x, y) = nonlinear_classification(100, 7);
        let mut f = RandomForestClassifier::new(ForestConfig::fast());
        f.fit(&x, &y, 2).unwrap();
        for p in f.predict_proba(&x).unwrap() {
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn unfitted_errors() {
        let f = RandomForestClassifier::new(ForestConfig::default());
        assert!(f.predict(&[vec![1.0]]).is_err());
        let r = RandomForestRegressor::new(ForestConfig::default());
        assert!(r.predict(&[vec![1.0]]).is_err());
    }

    #[test]
    fn single_thread_matches_parallel() {
        let (x, y) = nonlinear_classification(150, 8);
        let mut seq = RandomForestClassifier::new(ForestConfig {
            n_threads: 1,
            ..ForestConfig::default()
        });
        let mut par = RandomForestClassifier::new(ForestConfig {
            n_threads: 4,
            ..ForestConfig::default()
        });
        seq.fit(&x, &y, 2).unwrap();
        par.fit(&x, &y, 2).unwrap();
        assert_eq!(seq.predict(&x).unwrap(), par.predict(&x).unwrap());
    }

    #[test]
    fn no_bootstrap_mode_trains() {
        let (x, y) = nonlinear_classification(100, 9);
        let mut f = RandomForestClassifier::new(ForestConfig {
            bootstrap: false,
            ..ForestConfig::default()
        });
        f.fit(&x, &y, 2).unwrap();
        assert_eq!(f.predict(&x).unwrap().len(), y.len());
    }
}
