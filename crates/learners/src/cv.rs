//! Cross-validated downstream-task evaluation — the paper's `A_T(F, y)`.
//!
//! The AFE loop repeatedly asks "how good is this feature set for the
//! downstream task?". Following the paper, the answer is a k-fold
//! cross-validation score: support-weighted F1 for classification, 1-RAE
//! for regression. The downstream model defaults to Random Forest and can
//! be swapped (Table V uses SVM, NB/GP and MLP on the cached features).

use crate::binned::{BinnedDataset, SplitMethod};
use crate::error::{LearnError, Result};
use crate::forest::{ForestConfig, RandomForestClassifier, RandomForestRegressor};
use crate::gp::{GaussianProcess, GpConfig};
use crate::linear::{LinearConfig, LinearSvm};
use crate::metrics::{f1_score, one_minus_rae};
use crate::mlp::{MlpClassifier, MlpConfig, MlpRegressor};
use crate::nb::GaussianNb;
use serde::{Deserialize, Serialize};
use tabular::split::cv_indices;
use tabular::{DataFrame, Label, Task};

/// Which model family evaluates the features.
///
/// `NaiveBayesGp` matches the paper's Table V column "NB GP": Gaussian
/// Naive Bayes for classification datasets, Gaussian Process for regression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Random forest (the paper's default downstream task).
    RandomForest,
    /// Linear SVM (classification) / not defined for regression — regression
    /// frames fall back to the forest regressor, mirroring the paper's use
    /// of SVM only on classification rows of Table V.
    Svm,
    /// Gaussian NB (classification) or Gaussian Process (regression).
    NaiveBayesGp,
    /// Multi-layer perceptron.
    Mlp,
}

impl ModelKind {
    /// Short display name used in result tables.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::RandomForest => "RF",
            ModelKind::Svm => "SVM",
            ModelKind::NaiveBayesGp => "NB|GP",
            ModelKind::Mlp => "MLP",
        }
    }
}

/// A reusable downstream-task evaluator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluator {
    /// Model family.
    pub kind: ModelKind,
    /// Number of CV folds (the paper uses 5-fold cross-validation).
    pub folds: usize,
    /// Seed for fold assignment and model fitting.
    pub seed: u64,
    /// Forest configuration (used by `RandomForest` and as SVM's regression
    /// fallback).
    pub forest: ForestConfig,
    /// Linear-model configuration for the SVM.
    pub linear: LinearConfig,
    /// GP configuration for regression under `NaiveBayesGp`.
    pub gp: GpConfig,
    /// MLP configuration.
    pub mlp: MlpConfig,
    /// Synthetic per-evaluation latency in microseconds, slept at the top
    /// of [`Evaluator::evaluate`] (0 = off, the default). A benchmarking
    /// knob: it models a downstream evaluator whose cost is dominated by
    /// latency rather than local CPU (a remote scoring service, or CV on
    /// datasets far larger than a CI box can hold), which is what the
    /// distributed search layer overlaps across workers. Part of the
    /// config digest like every other field, so delayed and undelayed
    /// evaluations never share cache entries.
    pub synthetic_delay_us: u64,
}

impl Default for Evaluator {
    fn default() -> Self {
        Self {
            kind: ModelKind::RandomForest,
            folds: 5,
            seed: 0,
            forest: ForestConfig::fast(),
            linear: LinearConfig::default(),
            gp: GpConfig::default(),
            mlp: MlpConfig::default(),
            synthetic_delay_us: 0,
        }
    }
}

/// Extract a column-major feature matrix from a frame.
pub fn feature_matrix(frame: &DataFrame) -> Vec<Vec<f64>> {
    frame.columns().iter().map(|c| c.values.clone()).collect()
}

impl Evaluator {
    /// Evaluator with the given model kind and all other settings default.
    pub fn with_kind(kind: ModelKind) -> Self {
        Self {
            kind,
            ..Self::default()
        }
    }

    /// Cross-validated downstream score `A_T(F, y)` of the frame's features.
    ///
    /// Classification → support-weighted F1; regression → 1-RAE, both
    /// averaged over the folds.
    pub fn evaluate(&self, frame: &DataFrame) -> Result<f64> {
        if frame.n_cols() == 0 {
            return Err(LearnError::EmptyTrainingSet(
                "no feature columns to evaluate".into(),
            ));
        }
        if self.synthetic_delay_us > 0 {
            std::thread::sleep(std::time::Duration::from_micros(self.synthetic_delay_us));
        }
        let splits = cv_indices(frame.label(), self.folds, self.seed)?;
        let n_folds = splits.len();
        // When every fold trains a histogram forest, quantise the frame
        // once here and hand all folds (and all their trees) the same
        // bins — the "bin once, train everywhere" regime. Non-forest
        // model kinds keep the gather-per-fold path.
        let binned = if self.uses_binned_forest(frame.task()) {
            let cols: Vec<&[f64]> = frame
                .columns()
                .iter()
                .map(|c| c.values.as_slice())
                .collect();
            Some(BinnedDataset::from_slices_cached(
                &cols,
                self.forest.tree.max_bins,
            )?)
        } else {
            None
        };
        // Folds are independent given their index-derived seeds, so they can
        // run on the shared pool; summing in fold order afterwards keeps the
        // result bit-identical to a sequential run.
        let pool = runtime::WorkerPool::new().with_seed(self.seed);
        let fold_scores = pool.map(splits, |ctx, split| match &binned {
            Some(b) => self.fit_score_binned(b, frame, &split, ctx.index as u64),
            None => {
                let train = frame.take_rows(&split.train)?;
                let test = frame.take_rows(&split.test)?;
                self.fit_score(&train, &test, ctx.index as u64)
            }
        });
        let mut total = 0.0;
        for score in fold_scores {
            total += score?;
        }
        Ok(total / n_folds as f64)
    }

    /// Whether `evaluate` trains a histogram forest on every fold (and so
    /// should bin the frame once up front): the forest kind, plus SVM's
    /// regression fallback, with [`SplitMethod::Histogram`] configured.
    fn uses_binned_forest(&self, task: Task) -> bool {
        self.forest.tree.split == SplitMethod::Histogram
            && match self.kind {
                ModelKind::RandomForest => true,
                ModelKind::Svm => task == Task::Regression,
                ModelKind::NaiveBayesGp | ModelKind::Mlp => false,
            }
    }

    /// One fold against the shared pre-binned frame: train the forest on
    /// the fold's train rows straight from the bin codes, gather only the
    /// test sub-matrix for prediction.
    fn fit_score_binned(
        &self,
        binned: &BinnedDataset,
        frame: &DataFrame,
        split: &tabular::split::Split,
        fold_seed: u64,
    ) -> Result<f64> {
        let seed = self.seed ^ fold_seed.wrapping_mul(0x9E37);
        let xte: Vec<Vec<f64>> = frame
            .columns()
            .iter()
            .map(|c| split.test.iter().map(|&r| c.values[r]).collect())
            .collect();
        match frame.label() {
            Label::Class { y, n_classes } => {
                let mut m = RandomForestClassifier::new(ForestConfig {
                    seed,
                    ..self.forest
                });
                m.fit_binned(binned, &split.train, y, *n_classes)?;
                let preds = m.predict(&xte)?;
                let yte: Vec<usize> = split.test.iter().map(|&r| y[r]).collect();
                f1_score(&yte, &preds, *n_classes)
            }
            Label::Reg(y) => {
                let mut m = RandomForestRegressor::new(ForestConfig {
                    seed,
                    ..self.forest
                });
                m.fit_binned(binned, &split.train, y)?;
                let preds = m.predict(&xte)?;
                let yte: Vec<f64> = split.test.iter().map(|&r| y[r]).collect();
                one_minus_rae(&yte, &preds)
            }
        }
    }

    /// Fit on `train`, score on `test` (one fold).
    pub fn fit_score(&self, train: &DataFrame, test: &DataFrame, fold_seed: u64) -> Result<f64> {
        let xtr = feature_matrix(train);
        let xte = feature_matrix(test);
        match (train.task(), train.label()) {
            (Task::Classification, Label::Class { y, n_classes }) => {
                let yte = test
                    .label()
                    .classes()
                    .expect("classification frame")
                    .to_vec();
                let preds = self.classify(&xtr, y, *n_classes, &xte, fold_seed)?;
                f1_score(&yte, &preds, *n_classes)
            }
            (Task::Regression, Label::Reg(y)) => {
                let yte = test.label().targets().expect("regression frame").to_vec();
                let preds = self.regress(&xtr, y, &xte, fold_seed)?;
                one_minus_rae(&yte, &preds)
            }
            _ => unreachable!("task and label always agree"),
        }
    }

    fn classify(
        &self,
        xtr: &[Vec<f64>],
        ytr: &[usize],
        n_classes: usize,
        xte: &[Vec<f64>],
        fold_seed: u64,
    ) -> Result<Vec<usize>> {
        let seed = self.seed ^ fold_seed.wrapping_mul(0x9E37);
        match self.kind {
            ModelKind::RandomForest => {
                let mut m = RandomForestClassifier::new(ForestConfig {
                    seed,
                    ..self.forest
                });
                m.fit(xtr, ytr, n_classes)?;
                m.predict(xte)
            }
            ModelKind::Svm => {
                let mut m = LinearSvm::new(LinearConfig {
                    seed,
                    ..self.linear
                });
                m.fit(xtr, ytr, n_classes)?;
                m.predict(xte)
            }
            ModelKind::NaiveBayesGp => {
                let mut m = GaussianNb::default();
                m.fit(xtr, ytr, n_classes)?;
                m.predict(xte)
            }
            ModelKind::Mlp => {
                let mut m = MlpClassifier::new(MlpConfig { seed, ..self.mlp });
                m.fit(xtr, ytr, n_classes)?;
                m.predict(xte)
            }
        }
    }

    fn regress(
        &self,
        xtr: &[Vec<f64>],
        ytr: &[f64],
        xte: &[Vec<f64>],
        fold_seed: u64,
    ) -> Result<Vec<f64>> {
        let seed = self.seed ^ fold_seed.wrapping_mul(0x9E37);
        match self.kind {
            ModelKind::RandomForest | ModelKind::Svm => {
                // Linear SVR is not part of the paper's Table V regression
                // rows; SVM falls back to the forest regressor.
                let mut m = RandomForestRegressor::new(ForestConfig {
                    seed,
                    ..self.forest
                });
                m.fit(xtr, ytr)?;
                m.predict(xte)
            }
            ModelKind::NaiveBayesGp => {
                let mut m = GaussianProcess::new(self.gp);
                m.fit(xtr, ytr)?;
                m.predict(xte)
            }
            ModelKind::Mlp => {
                let mut m = MlpRegressor::new(MlpConfig { seed, ..self.mlp });
                m.fit(xtr, ytr)?;
                m.predict(xte)
            }
        }
    }
}

impl runtime::Scorer for Evaluator {
    type Error = LearnError;

    /// Everything besides the frame that determines a score lives in this
    /// struct (model kind, hyper-parameters, fold count, CV seed), so the
    /// digest is simply a hash of its serialised form.
    fn config_digest(&self) -> runtime::Fingerprint {
        let mut h = runtime::Hasher128::new();
        h.write_str("learners::Evaluator");
        h.write_str(&serde_json::to_string(self).expect("evaluator config serialises"));
        h.finish()
    }

    fn score_frame(&self, frame: &DataFrame) -> Result<f64> {
        self.evaluate(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::SynthSpec;

    fn class_frame() -> DataFrame {
        SynthSpec::new("cv-c", 300, 8, Task::Classification)
            .with_seed(1)
            .generate()
            .unwrap()
    }

    fn reg_frame() -> DataFrame {
        SynthSpec::new("cv-r", 300, 8, Task::Regression)
            .with_seed(2)
            .generate()
            .unwrap()
    }

    #[test]
    fn rf_evaluation_beats_chance_on_classification() {
        let score = Evaluator::default().evaluate(&class_frame()).unwrap();
        assert!(score > 0.55, "F1 {score}");
        assert!(score <= 1.0);
    }

    #[test]
    fn rf_evaluation_positive_on_regression() {
        let score = Evaluator::default().evaluate(&reg_frame()).unwrap();
        assert!(score > 0.1, "1-rae {score}");
    }

    #[test]
    fn evaluation_is_deterministic() {
        let f = class_frame();
        let e = Evaluator::default();
        assert_eq!(e.evaluate(&f).unwrap(), e.evaluate(&f).unwrap());
    }

    #[test]
    fn all_model_kinds_run_on_both_tasks() {
        let c = class_frame();
        let r = reg_frame();
        for kind in [
            ModelKind::RandomForest,
            ModelKind::Svm,
            ModelKind::NaiveBayesGp,
            ModelKind::Mlp,
        ] {
            let mut e = Evaluator::with_kind(kind);
            e.mlp.epochs = 5; // keep the test fast
            let sc = e.evaluate(&c).unwrap();
            assert!(sc.is_finite(), "{:?} classification score {sc}", kind);
            let sr = e.evaluate(&r).unwrap();
            assert!(sr.is_finite(), "{:?} regression score {sr}", kind);
        }
    }

    #[test]
    fn empty_feature_set_errors() {
        let f = class_frame().select_columns(&[]).unwrap();
        assert!(Evaluator::default().evaluate(&f).is_err());
    }

    #[test]
    fn kind_names() {
        assert_eq!(ModelKind::RandomForest.name(), "RF");
        assert_eq!(ModelKind::NaiveBayesGp.name(), "NB|GP");
    }

    #[test]
    fn parallel_folds_match_single_threaded_bit_for_bit() {
        let f = class_frame();
        let e = Evaluator::default();
        runtime::set_global_threads(1);
        let sequential = e.evaluate(&f).unwrap();
        runtime::set_global_threads(4);
        let parallel = e.evaluate(&f).unwrap();
        runtime::set_global_threads(0);
        assert_eq!(sequential.to_bits(), parallel.to_bits());
    }

    #[test]
    fn config_digest_tracks_configuration() {
        use runtime::Scorer;
        let a = Evaluator::default();
        let b = Evaluator::default();
        assert_eq!(a.config_digest(), b.config_digest());
        let c = Evaluator {
            seed: 17,
            ..Evaluator::default()
        };
        let d = Evaluator::with_kind(ModelKind::Mlp);
        assert_ne!(a.config_digest(), c.config_digest());
        assert_ne!(a.config_digest(), d.config_digest());
    }

    #[test]
    fn cached_evaluator_serves_repeats_from_cache() {
        let f = class_frame();
        let cached = runtime::Evaluator::new(Evaluator::default());
        let first = cached.evaluate(&f).unwrap();
        let second = cached.evaluate(&f).unwrap();
        assert_eq!(first.to_bits(), second.to_bits());
        let stats = cached.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }
}
