//! Linear models: multinomial logistic regression (the FPE model's binary
//! classifier) and a linear SVM trained with SGD on the hinge loss
//! (the "SVM" downstream task of the paper's Table V).

use crate::error::{LearnError, Result};
use crate::preprocess::{to_row_major, Standardizer};
use crate::tree::argmax;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Shared SGD hyper-parameters for the linear models.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearConfig {
    /// Learning rate.
    pub lr: f64,
    /// L2 regularisation strength.
    pub l2: f64,
    /// Number of passes over the data.
    pub epochs: usize,
    /// Shuffling / init seed.
    pub seed: u64,
}

impl Default for LinearConfig {
    fn default() -> Self {
        Self {
            lr: 0.1,
            l2: 1e-4,
            epochs: 60,
            seed: 0,
        }
    }
}

fn validate(x: &[Vec<f64>], n_labels: usize) -> Result<usize> {
    if x.is_empty() || n_labels == 0 {
        return Err(LearnError::EmptyTrainingSet("linear model".into()));
    }
    for col in x {
        if col.len() != n_labels {
            return Err(LearnError::InvalidParam(format!(
                "feature column length {} != label length {n_labels}",
                col.len()
            )));
        }
    }
    Ok(x.len())
}

/// Multinomial logistic regression with z-score preprocessing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogisticRegression {
    /// SGD hyper-parameters.
    pub config: LinearConfig,
    /// One weight row per class: `weights[c][feature]`.
    weights: Vec<Vec<f64>>,
    biases: Vec<f64>,
    scaler: Option<Standardizer>,
}

impl LogisticRegression {
    /// New unfitted model.
    pub fn new(config: LinearConfig) -> Self {
        Self {
            config,
            weights: Vec::new(),
            biases: Vec::new(),
            scaler: None,
        }
    }

    /// Fit on column-major features and class labels.
    pub fn fit(&mut self, x: &[Vec<f64>], y: &[usize], n_classes: usize) -> Result<()> {
        let n_features = validate(x, y.len())?;
        if n_classes < 2 {
            return Err(LearnError::InvalidParam("need at least 2 classes".into()));
        }
        let scaler = Standardizer::fit(x);
        let xs = scaler.transform(x);
        let rows = to_row_major(&xs);
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut w = vec![vec![0.0; n_features]; n_classes];
        let mut b = vec![0.0; n_classes];
        let mut order: Vec<usize> = (0..rows.len()).collect();
        let mut probs = vec![0.0; n_classes];
        for _ in 0..self.config.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                softmax_logits(&rows[i], &w, &b, &mut probs);
                for c in 0..n_classes {
                    let grad = probs[c] - f64::from(u8::from(y[i] == c));
                    for (wj, xj) in w[c].iter_mut().zip(&rows[i]) {
                        *wj -= self.config.lr * (grad * xj + self.config.l2 * *wj);
                    }
                    b[c] -= self.config.lr * grad;
                }
            }
        }
        self.weights = w;
        self.biases = b;
        self.scaler = Some(scaler);
        Ok(())
    }

    /// Per-row class probabilities.
    pub fn predict_proba(&self, x: &[Vec<f64>]) -> Result<Vec<Vec<f64>>> {
        let scaler = self
            .scaler
            .as_ref()
            .ok_or(LearnError::NotFitted("LogisticRegression"))?;
        if x.len() != scaler.n_features() {
            return Err(LearnError::DimensionMismatch {
                fitted: scaler.n_features(),
                got: x.len(),
            });
        }
        let xs = scaler.transform(x);
        let rows = to_row_major(&xs);
        let k = self.weights.len();
        let mut out = Vec::with_capacity(rows.len());
        for row in &rows {
            // Write each row's distribution once and move it into the
            // result — no intermediate buffer + clone.
            let mut probs = vec![0.0; k];
            softmax_logits(row, &self.weights, &self.biases, &mut probs);
            out.push(probs);
        }
        Ok(out)
    }

    /// Class predictions.
    pub fn predict(&self, x: &[Vec<f64>]) -> Result<Vec<usize>> {
        let scaler = self
            .scaler
            .as_ref()
            .ok_or(LearnError::NotFitted("LogisticRegression"))?;
        if x.len() != scaler.n_features() {
            return Err(LearnError::DimensionMismatch {
                fitted: scaler.n_features(),
                got: x.len(),
            });
        }
        let xs = scaler.transform(x);
        let rows = to_row_major(&xs);
        // argmax only needs the logits of each row in turn; reuse one
        // buffer instead of materialising every distribution.
        let mut probs = vec![0.0; self.weights.len()];
        Ok(rows
            .iter()
            .map(|row| {
                softmax_logits(row, &self.weights, &self.biases, &mut probs);
                argmax(&probs)
            })
            .collect())
    }

    /// Probability of the positive class (index 1) for binary models —
    /// the `p` in the paper's Eq. (7) surrogate reward.
    pub fn predict_positive_proba(&self, x: &[Vec<f64>]) -> Result<Vec<f64>> {
        let proba = self.predict_proba(x)?;
        if self.weights.len() < 2 {
            return Err(LearnError::InvalidParam(
                "positive-class probability needs a binary model".into(),
            ));
        }
        Ok(proba.into_iter().map(|p| p[1]).collect())
    }
}

fn softmax_logits(row: &[f64], w: &[Vec<f64>], b: &[f64], out: &mut [f64]) {
    for (c, o) in out.iter_mut().enumerate() {
        *o = b[c] + w[c].iter().zip(row).map(|(wj, xj)| wj * xj).sum::<f64>();
    }
    let max = out.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for o in out.iter_mut() {
        *o = (*o - max).exp();
        sum += *o;
    }
    for o in out.iter_mut() {
        *o /= sum;
    }
}

/// Linear SVM: one-vs-rest hinge loss with SGD, z-score preprocessing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearSvm {
    /// SGD hyper-parameters.
    pub config: LinearConfig,
    weights: Vec<Vec<f64>>,
    biases: Vec<f64>,
    scaler: Option<Standardizer>,
}

impl LinearSvm {
    /// New unfitted model.
    pub fn new(config: LinearConfig) -> Self {
        Self {
            config,
            weights: Vec::new(),
            biases: Vec::new(),
            scaler: None,
        }
    }

    /// Fit one-vs-rest hinge-loss separators.
    pub fn fit(&mut self, x: &[Vec<f64>], y: &[usize], n_classes: usize) -> Result<()> {
        let n_features = validate(x, y.len())?;
        if n_classes < 2 {
            return Err(LearnError::InvalidParam("need at least 2 classes".into()));
        }
        let scaler = Standardizer::fit(x);
        let xs = scaler.transform(x);
        let rows = to_row_major(&xs);
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut w = vec![vec![0.0; n_features]; n_classes];
        let mut b = vec![0.0; n_classes];
        let mut order: Vec<usize> = (0..rows.len()).collect();
        for _ in 0..self.config.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                for c in 0..n_classes {
                    let target = if y[i] == c { 1.0 } else { -1.0 };
                    let margin = target
                        * (b[c]
                            + w[c]
                                .iter()
                                .zip(&rows[i])
                                .map(|(wj, xj)| wj * xj)
                                .sum::<f64>());
                    // L2 shrink always; hinge sub-gradient when violating.
                    for (wj, xj) in w[c].iter_mut().zip(&rows[i]) {
                        let hinge = if margin < 1.0 { -target * xj } else { 0.0 };
                        *wj -= self.config.lr * (hinge + self.config.l2 * *wj);
                    }
                    if margin < 1.0 {
                        b[c] += self.config.lr * target;
                    }
                }
            }
        }
        self.weights = w;
        self.biases = b;
        self.scaler = Some(scaler);
        Ok(())
    }

    /// Class predictions by maximum one-vs-rest margin.
    pub fn predict(&self, x: &[Vec<f64>]) -> Result<Vec<usize>> {
        let scaler = self
            .scaler
            .as_ref()
            .ok_or(LearnError::NotFitted("LinearSvm"))?;
        if x.len() != scaler.n_features() {
            return Err(LearnError::DimensionMismatch {
                fitted: scaler.n_features(),
                got: x.len(),
            });
        }
        let xs = scaler.transform(x);
        let rows = to_row_major(&xs);
        // One reused margin buffer across rows (no per-row allocation).
        let mut scores = vec![0.0; self.weights.len()];
        Ok(rows
            .iter()
            .map(|row| {
                for ((s, wc), bc) in scores.iter_mut().zip(&self.weights).zip(&self.biases) {
                    *s = bc + wc.iter().zip(row).map(|(wj, xj)| wj * xj).sum::<f64>();
                }
                argmax(&scores)
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use rand::Rng;

    fn linearly_separable(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = Vec::new();
        let mut b = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let av: f64 = rng.gen_range(-2.0..2.0);
            let bv: f64 = rng.gen_range(-2.0..2.0);
            a.push(av);
            b.push(bv);
            y.push(usize::from(av + 2.0 * bv > 0.3));
        }
        (vec![a, b], y)
    }

    #[test]
    fn logreg_separates_linear_data() {
        let (x, y) = linearly_separable(300, 1);
        let mut m = LogisticRegression::new(LinearConfig::default());
        m.fit(&x, &y, 2).unwrap();
        let acc = accuracy(&y, &m.predict(&x).unwrap()).unwrap();
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn logreg_probabilities_valid() {
        let (x, y) = linearly_separable(100, 2);
        let mut m = LogisticRegression::new(LinearConfig::default());
        m.fit(&x, &y, 2).unwrap();
        for p in m.predict_proba(&x).unwrap() {
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
        let pos = m.predict_positive_proba(&x).unwrap();
        assert_eq!(pos.len(), 100);
    }

    #[test]
    fn logreg_multiclass() {
        // Three well-separated clusters on a line.
        let mut xs = Vec::new();
        let mut y = Vec::new();
        for i in 0..150 {
            let c = i % 3;
            xs.push(c as f64 * 5.0 + (i % 7) as f64 * 0.1);
            y.push(c);
        }
        let x = vec![xs];
        let mut m = LogisticRegression::new(LinearConfig {
            epochs: 120,
            ..Default::default()
        });
        m.fit(&x, &y, 3).unwrap();
        let acc = accuracy(&y, &m.predict(&x).unwrap()).unwrap();
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn svm_separates_linear_data() {
        let (x, y) = linearly_separable(300, 3);
        let mut m = LinearSvm::new(LinearConfig::default());
        m.fit(&x, &y, 2).unwrap();
        let acc = accuracy(&y, &m.predict(&x).unwrap()).unwrap();
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn unfitted_and_mismatch_errors() {
        let m = LogisticRegression::new(LinearConfig::default());
        assert!(m.predict(&[vec![1.0]]).is_err());
        let (x, y) = linearly_separable(50, 4);
        let mut m = LinearSvm::new(LinearConfig::default());
        m.fit(&x, &y, 2).unwrap();
        assert!(m.predict(&[vec![1.0]]).is_err());
    }

    #[test]
    fn rejects_degenerate_input() {
        let mut m = LogisticRegression::new(LinearConfig::default());
        assert!(m.fit(&[], &[], 2).is_err());
        assert!(m.fit(&[vec![1.0]], &[0], 1).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = linearly_separable(120, 5);
        let mut a = LogisticRegression::new(LinearConfig::default());
        let mut b = LogisticRegression::new(LinearConfig::default());
        a.fit(&x, &y, 2).unwrap();
        b.fit(&x, &y, 2).unwrap();
        assert_eq!(a.predict(&x).unwrap(), b.predict(&x).unwrap());
    }
}
