//! Flat batched dense kernels for the neural learners (DESIGN.md §10).
//!
//! The MLP and tabular-ResNet learners used to run strictly per sample:
//! `Vec<Vec<f64>>` weights, a fresh `Vec` per layer per sample, and a
//! full `collect_params`/`collect_grads`/`scatter_params` copy of every
//! parameter on every minibatch step. This module replaces that hot path
//! with
//!
//! * [`Mat`] — a contiguous row-major activation/parameter store,
//! * [`FlatNet`] — all layer parameters in **one flat slab** laid out in
//!   `collect_params` order (per layer: row-major weights, then biases),
//!   so the Adam step runs in place over the slab with no copies,
//! * [`FlatNet::forward_batch`] / [`FlatNet::backward_batch`] — batched
//!   kernels over a whole microbatch with reusable [`Scratch`] buffers
//!   owned by the trainer (zero per-sample allocation),
//! * a shared crate-private training driver (`train_flat`) used by both
//!   the MLP and ResNet heads (one Adam loop, two loss closures).
//!
//! # Bit-identity contract
//!
//! Two invariants are pinned by `crates/learners/tests/nn_parity.rs` and
//! `tests/parallel_determinism.rs`:
//!
//! 1. **Batched == scalar.** Every inner product — in the batched
//!    kernels here *and* in the per-sample code
//!    (`Dense::forward`/`Dense::backward`) — reduces through the pinned
//!    SIMD lane tree (`simd::dot`, DESIGN.md §13): four independent
//!    lane accumulators over chunks of 4, `(0+1)+(2+3)`, sequential
//!    ascending tail. Elementwise gradient updates are `simd::axpy`
//!    (one multiply + one add per cell, never FMA), and microbatch
//!    gradient accumulation visits rows in ascending order — the same
//!    per-cell addend sequence on both backends. The retained
//!    per-sample path ([`NnBackend::Scalar`], the testing reference
//!    with the old allocation/copy cost profile) therefore trains to
//!    **bit-identical** parameters, on every ISA tier.
//! 2. **1 thread == N threads.** Each minibatch is split into a *fixed
//!    microbatch partition* of [`TRAIN_MICROBATCH`] rows. Every
//!    microbatch accumulates into its own zeroed partial slab, and the
//!    partials are reduced into the gradient **serially in microbatch
//!    index order** — on the serial path and the `runtime::WorkerPool`
//!    path alike. The floating-point accumulation order is defined by
//!    the partition, not the thread count, so results are invariant
//!    under `runtime::set_global_threads`.
//!
//! The parallel path allocates one scratch + partial slab per microbatch
//! task (the pool's scoped workers cannot share the trainer's buffers);
//! the serial path reuses trainer-owned buffers and allocates nothing
//! per step. Dispatch to the pool happens only when a minibatch carries
//! enough work (`PARALLEL_GRAIN`: minibatch rows × parameters) to
//! amortise task setup.

use crate::error::{LearnError, Result};
use crate::nn::{collect_grads, collect_params, relu, relu_backward, scatter_params, Adam, Dense};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use runtime::WorkerPool;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Fixed training microbatch size: the unit of the gradient partition.
/// Part of the reduction-order contract — changing it changes which
/// floating-point sums are formed (still deterministically, but not
/// bit-compatibly with previously trained nets).
pub const TRAIN_MICROBATCH: usize = 8;

/// Inference microbatch: rows processed per `forward_batch` call when
/// predicting/embedding. Purely a blocking factor — outputs are
/// row-independent, so it does not affect results.
const INFER_MICROBATCH: usize = 256;

/// Minimum `rows × parameters` product before a minibatch (or an
/// inference pass) is worth shipping to the worker pool; below this the
/// scoped-thread setup of `WorkerPool::map` costs more than it saves.
/// Public so the parity suite can pin behaviour exactly at and one past
/// the boundary (`nn_parity.rs`); crossing it must never change results,
/// only where they are computed.
pub const PARALLEL_GRAIN: usize = 262_144;

/// Which training/inference implementation a neural learner runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum NnBackend {
    /// Per-sample reference path: `Vec<Vec<f64>>` layers, a fresh `Vec`
    /// per layer per sample, and full parameter collect/scatter copies
    /// each step — the pre-batching cost profile, kept as the testing
    /// baseline. Always single-threaded.
    Scalar,
    /// Flat batched kernels (this module). Bit-identical to `Scalar`,
    /// at any thread count.
    #[default]
    Batched,
}

/// Network shape: which architecture a [`FlatNet`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Topology {
    /// One hidden ReLU layer: `out = W₂ relu(W₁ x)`.
    Mlp {
        /// Hidden layer width.
        hidden: usize,
    },
    /// RTDL-style tabular ResNet: linear stem to `width`, `n_blocks`
    /// residual blocks `z ← z + W₂ relu(W₁ z)`, linear head.
    ResNet {
        /// Hidden representation width.
        width: usize,
        /// Number of residual blocks.
        n_blocks: usize,
    },
}

/// One dense layer's dimensions and offsets into the flat parameter slab.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerSpec {
    /// Input dimension.
    pub n_in: usize,
    /// Output dimension.
    pub n_out: usize,
    /// Offset of the row-major `n_out × n_in` weight block.
    pub w_off: usize,
    /// Offset of the `n_out` bias block (`w_off + n_in·n_out`).
    pub b_off: usize,
}

/// A dense row-major matrix used for parameters and activations.
///
/// Unlike `Vec<Vec<f64>>` this is one contiguous allocation; rows are
/// handed out as slices. [`Mat::set_rows`] changes the *logical* row
/// count without shrinking capacity, which is how [`Scratch`] buffers
/// are reused across microbatches of different sizes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from column-major columns (the learners' public input
    /// layout), transposing into row-major storage.
    pub fn from_columns(cols: &[Vec<f64>]) -> Self {
        let n_rows = cols.first().map_or(0, Vec::len);
        let n_cols = cols.len();
        let mut m = Self::zeros(n_rows, n_cols);
        for (c, col) in cols.iter().enumerate() {
            debug_assert_eq!(col.len(), n_rows, "ragged column-major input");
            for (r, &v) in col.iter().enumerate() {
                m.data[r * n_cols + c] = v;
            }
        }
        m
    }

    /// Build from row-major rows.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let n_cols = rows.first().map_or(0, Vec::len);
        let mut m = Self::zeros(rows.len(), n_cols);
        for (r, row) in rows.iter().enumerate() {
            debug_assert_eq!(row.len(), n_cols, "ragged row-major input");
            m.row_mut(r).copy_from_slice(row);
        }
        m
    }

    /// Logical row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `r` as a contiguous slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable contiguous slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The full row-major backing slice (logical rows only).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Change the logical row count, reusing the existing allocation
    /// when capacity allows (new cells are zeroed).
    pub fn set_rows(&mut self, rows: usize) {
        self.rows = rows;
        self.data.resize(rows * self.cols, 0.0);
    }
}

/// Reusable activation/gradient buffers for one microbatch, owned by the
/// trainer (or one pool task) and recycled across steps — the batched
/// path performs **zero per-sample allocations**.
#[derive(Debug, Clone)]
pub struct Scratch {
    /// Gathered input rows for the current microbatch.
    x: Mat,
    /// ResNet z-states: after the stem and after each block (empty for MLP).
    z: Vec<Mat>,
    /// Pre-activations per ReLU (MLP: one entry; ResNet: one per block).
    pre: Vec<Mat>,
    /// ReLU activations.
    h: Mat,
    /// ResNet branch output `W₂ relu(W₁ z)`.
    delta: Mat,
    /// Network outputs (logits / regression head).
    out: Mat,
    /// Loss gradient w.r.t. the outputs.
    dout: Mat,
    /// Gradient flowing along the residual trunk (head input gradient).
    dz: Mat,
    /// Gradient w.r.t. ReLU activations.
    dh: Mat,
    /// Gradient w.r.t. pre-activations.
    dpre: Mat,
    /// Gradient entering the trunk from one residual branch.
    dbranch: Mat,
}

impl Scratch {
    /// Set the logical microbatch size on every buffer.
    pub fn set_rows(&mut self, rows: usize) {
        self.x.set_rows(rows);
        for m in &mut self.z {
            m.set_rows(rows);
        }
        for m in &mut self.pre {
            m.set_rows(rows);
        }
        self.h.set_rows(rows);
        self.delta.set_rows(rows);
        self.out.set_rows(rows);
        self.dout.set_rows(rows);
        self.dz.set_rows(rows);
        self.dh.set_rows(rows);
        self.dpre.set_rows(rows);
        self.dbranch.set_rows(rows);
    }

    /// Input rows buffer (fill before [`FlatNet::forward_batch`]).
    pub fn x_mut(&mut self) -> &mut Mat {
        &mut self.x
    }

    /// Network outputs of the last [`FlatNet::forward_batch`] call.
    pub fn out(&self) -> &Mat {
        &self.out
    }

    /// Output-gradient buffer (fill before [`FlatNet::backward_batch`]).
    pub fn dout_mut(&mut self) -> &mut Mat {
        &mut self.dout
    }

    /// Penultimate representation of the last forward pass (ResNet: the
    /// final trunk state; MLP: the hidden ReLU activations).
    pub fn embedding(&self) -> &Mat {
        self.z.last().unwrap_or(&self.h)
    }
}

/// A feed-forward network with every parameter in one flat slab.
///
/// Layout: layers in forward order ([`Topology::Mlp`]: hidden, output;
/// [`Topology::ResNet`]: stem, then `W₁, W₂` per block, then head), each
/// layer contributing its row-major `n_out × n_in` weight block followed
/// by its `n_out` biases — exactly the order `nn::collect_params`
/// produces for the scalar reference layers, so slabs are comparable
/// bit-for-bit across backends.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlatNet {
    topo: Topology,
    n_in: usize,
    n_out: usize,
    layers: Vec<LayerSpec>,
    params: Vec<f64>,
}

impl FlatNet {
    fn layer_dims(topo: Topology, n_in: usize, n_out: usize) -> Vec<(usize, usize)> {
        match topo {
            Topology::Mlp { hidden } => vec![(n_in, hidden), (hidden, n_out)],
            Topology::ResNet { width, n_blocks } => {
                let mut dims = vec![(n_in, width)];
                for _ in 0..n_blocks {
                    dims.push((width, width));
                    dims.push((width, width));
                }
                dims.push((width, n_out));
                dims
            }
        }
    }

    fn specs_from_dims(dims: &[(usize, usize)]) -> (Vec<LayerSpec>, usize) {
        let mut layers = Vec::with_capacity(dims.len());
        let mut off = 0usize;
        for &(n_in, n_out) in dims {
            layers.push(LayerSpec {
                n_in,
                n_out,
                w_off: off,
                b_off: off + n_in * n_out,
            });
            off += n_in * n_out + n_out;
        }
        (layers, off)
    }

    /// He-initialised network drawing the **same RNG sequence** as the
    /// scalar reference (`Dense::new` per layer in forward order), so a
    /// freshly initialised `FlatNet` equals the scalar net bit-for-bit.
    pub fn init(topo: Topology, n_in: usize, n_out: usize, rng: &mut StdRng) -> Self {
        let dims = Self::layer_dims(topo, n_in, n_out);
        let (layers, total) = Self::specs_from_dims(&dims);
        let mut params = vec![0.0; total];
        for spec in &layers {
            let scale = (2.0 / spec.n_in.max(1) as f64).sqrt();
            for w in &mut params[spec.w_off..spec.b_off] {
                *w = rng.gen_range(-scale..scale);
            }
            // Biases stay zero, as in `Dense::new`.
        }
        Self {
            topo,
            n_in,
            n_out,
            layers,
            params,
        }
    }

    fn from_scalar(net: &ScalarNet) -> Self {
        let dims = Self::layer_dims(net.topo, net.n_in, net.n_out);
        let (layers, total) = Self::specs_from_dims(&dims);
        let mut params = Vec::with_capacity(total);
        for layer in &net.layers {
            for row in &layer.w {
                params.extend_from_slice(row);
            }
            params.extend_from_slice(&layer.b);
        }
        debug_assert_eq!(params.len(), total);
        Self {
            topo: net.topo,
            n_in: net.n_in,
            n_out: net.n_out,
            layers,
            params,
        }
    }

    /// Network shape.
    pub fn topology(&self) -> Topology {
        self.topo
    }

    /// Input dimension.
    pub fn n_in(&self) -> usize {
        self.n_in
    }

    /// Output dimension.
    pub fn n_out(&self) -> usize {
        self.n_out
    }

    /// Width of the penultimate representation.
    pub fn hidden_width(&self) -> usize {
        match self.topo {
            Topology::Mlp { hidden } => hidden,
            Topology::ResNet { width, .. } => width,
        }
    }

    /// Total parameter count.
    pub fn n_params(&self) -> usize {
        self.params.len()
    }

    /// The flat parameter slab (layout documented on the type).
    pub fn params(&self) -> &[f64] {
        &self.params
    }

    fn params_mut(&mut self) -> &mut [f64] {
        &mut self.params
    }

    fn w(&self, s: LayerSpec) -> &[f64] {
        &self.params[s.w_off..s.b_off]
    }

    fn b(&self, s: LayerSpec) -> &[f64] {
        &self.params[s.b_off..s.b_off + s.n_out]
    }

    /// Allocate scratch buffers sized for microbatches of up to
    /// `cap_rows` rows.
    pub fn scratch(&self, cap_rows: usize) -> Scratch {
        let width = self.hidden_width();
        let (n_z, n_pre) = match self.topo {
            Topology::Mlp { .. } => (0, 1),
            Topology::ResNet { n_blocks, .. } => (n_blocks + 1, n_blocks),
        };
        Scratch {
            x: Mat::zeros(cap_rows, self.n_in),
            z: (0..n_z).map(|_| Mat::zeros(cap_rows, width)).collect(),
            pre: (0..n_pre).map(|_| Mat::zeros(cap_rows, width)).collect(),
            h: Mat::zeros(cap_rows, width),
            delta: Mat::zeros(cap_rows, width),
            out: Mat::zeros(cap_rows, self.n_out),
            dout: Mat::zeros(cap_rows, self.n_out),
            dz: Mat::zeros(cap_rows, width),
            dh: Mat::zeros(cap_rows, width),
            dpre: Mat::zeros(cap_rows, width),
            dbranch: Mat::zeros(cap_rows, width),
        }
    }

    /// Batched forward pass over the microbatch in `scr.x` (all rows at
    /// once). Inner dot products keep the per-output ascending-`k`
    /// summation order of `Dense::forward`, so each output row is
    /// bit-identical to the per-sample path.
    pub fn forward_batch(&self, scr: &mut Scratch) {
        let Scratch {
            x,
            z,
            pre,
            h,
            delta,
            out,
            ..
        } = scr;
        match self.topo {
            Topology::Mlp { .. } => {
                let l1 = self.layers[0];
                let l2 = self.layers[1];
                dense_forward(self.w(l1), self.b(l1), x, &mut pre[0]);
                relu_batch(&pre[0], h);
                dense_forward(self.w(l2), self.b(l2), h, out);
            }
            Topology::ResNet { n_blocks, .. } => {
                let stem = self.layers[0];
                dense_forward(self.w(stem), self.b(stem), x, &mut z[0]);
                for blk in 0..n_blocks {
                    let w1 = self.layers[1 + 2 * blk];
                    let w2 = self.layers[2 + 2 * blk];
                    dense_forward(self.w(w1), self.b(w1), &z[blk], &mut pre[blk]);
                    relu_batch(&pre[blk], h);
                    dense_forward(self.w(w2), self.b(w2), h, delta);
                    // z[blk+1] = z[blk] + delta, elementwise in index order.
                    let (z_in, z_out) = z.split_at_mut(blk + 1);
                    z_out[0].data.copy_from_slice(&z_in[blk].data);
                    add_assign(&mut z_out[0], delta);
                }
                let head = self.layers[self.layers.len() - 1];
                dense_forward(self.w(head), self.b(head), &z[n_blocks], out);
            }
        }
    }

    /// Batched backward pass: accumulate parameter gradients for the
    /// microbatch last run through [`FlatNet::forward_batch`] (with
    /// `scr.dout` filled) into `grads`, a slab with the same layout as
    /// [`FlatNet::params`]. Rows are accumulated in ascending order —
    /// the same per-cell addend sequence as the per-sample reference —
    /// and `grads` is *not* zeroed here, so partials can be layered.
    pub fn backward_batch(&self, scr: &mut Scratch, grads: &mut [f64]) {
        debug_assert_eq!(grads.len(), self.params.len());
        let Scratch {
            x,
            z,
            pre,
            h,
            dout,
            dz,
            dh,
            dpre,
            dbranch,
            ..
        } = scr;
        match self.topo {
            Topology::Mlp { .. } => {
                let l1 = self.layers[0];
                let l2 = self.layers[1];
                // `h` still holds relu(pre) from the forward pass.
                let (gw2, gb2) = grad_slices(grads, l2);
                dense_backward(self.w(l2), h, dout, gw2, gb2, Some(dh));
                relu_backward_batch(&pre[0], dh, dpre);
                let (gw1, gb1) = grad_slices(grads, l1);
                dense_backward(self.w(l1), x, dpre, gw1, gb1, None);
            }
            Topology::ResNet { n_blocks, .. } => {
                let head = self.layers[self.layers.len() - 1];
                let (gwh, gbh) = grad_slices(grads, head);
                dense_backward(self.w(head), &z[n_blocks], dout, gwh, gbh, Some(dz));
                for blk in (0..n_blocks).rev() {
                    let w1 = self.layers[1 + 2 * blk];
                    let w2 = self.layers[2 + 2 * blk];
                    // Recompute the block's ReLU activations (the forward
                    // buffer was overwritten by later blocks).
                    relu_batch(&pre[blk], h);
                    let (gw2, gb2) = grad_slices(grads, w2);
                    dense_backward(self.w(w2), h, dz, gw2, gb2, Some(dh));
                    relu_backward_batch(&pre[blk], dh, dpre);
                    let (gw1, gb1) = grad_slices(grads, w1);
                    dense_backward(self.w(w1), &z[blk], dpre, gw1, gb1, Some(dbranch));
                    // Residual: dz flows straight through plus via the branch.
                    add_assign(dz, dbranch);
                }
                let stem = self.layers[0];
                let (gws, gbs) = grad_slices(grads, stem);
                dense_backward(self.w(stem), x, dz, gws, gbs, None);
            }
        }
    }
}

/// Split a gradient slab into one layer's (weights, biases) views.
fn grad_slices(grads: &mut [f64], s: LayerSpec) -> (&mut [f64], &mut [f64]) {
    let (w, rest) = grads[s.w_off..].split_at_mut(s.n_in * s.n_out);
    (w, &mut rest[..s.n_out])
}

/// Batched dense forward: `out[r] = W x[r] + b` for every row.
/// Per output: `b + dot(w[o], x)` where the dot product is the pinned
/// SIMD lane tree (DESIGN.md §13) — the exact `Dense::forward` reduction,
/// so the scalar and batched backends stay bit-identical.
fn dense_forward(w: &[f64], b: &[f64], x: &Mat, out: &mut Mat) {
    let n_in = x.cols();
    debug_assert_eq!(w.len(), n_in * out.cols());
    debug_assert_eq!(b.len(), out.cols());
    for r in 0..x.rows() {
        let xr = x.row(r);
        for ((slot, wrow), bias) in out.row_mut(r).iter_mut().zip(w.chunks_exact(n_in)).zip(b) {
            *slot = bias + simd::dot(wrow, xr);
        }
    }
}

/// Batched dense backward. For each row in ascending order, and each
/// output `o` in ascending order: `gb[o] += g`, then the elementwise
/// [`simd::axpy`] updates `gw[o][k] += g·x[k]` and `dx[k] += g·w[o][k]`
/// — per cell the exact `Dense::backward` expression (one multiply, one
/// add, no FMA), so any ISA tier is bitwise identical. `dx` rows are
/// zeroed here (the per-sample path allocates a fresh zeroed `dx`); pass
/// `None` for the first layer where the input gradient is unused.
fn dense_backward(
    w: &[f64],
    x: &Mat,
    dy: &Mat,
    gw: &mut [f64],
    gb: &mut [f64],
    mut dx: Option<&mut Mat>,
) {
    let n_in = x.cols();
    debug_assert_eq!(w.len(), n_in * dy.cols());
    debug_assert_eq!(gw.len(), w.len());
    debug_assert_eq!(gb.len(), dy.cols());
    for r in 0..x.rows() {
        let xr = x.row(r);
        let dyr = dy.row(r);
        match dx.as_deref_mut() {
            Some(dx) => {
                let dxr = dx.row_mut(r);
                dxr.fill(0.0);
                for (((&g, gbo), gwrow), wrow) in dyr
                    .iter()
                    .zip(gb.iter_mut())
                    .zip(gw.chunks_exact_mut(n_in))
                    .zip(w.chunks_exact(n_in))
                {
                    *gbo += g;
                    simd::axpy(gwrow, g, xr);
                    simd::axpy(dxr, g, wrow);
                }
            }
            None => {
                for ((&g, gbo), gwrow) in
                    dyr.iter().zip(gb.iter_mut()).zip(gw.chunks_exact_mut(n_in))
                {
                    *gbo += g;
                    simd::axpy(gwrow, g, xr);
                }
            }
        }
    }
}

/// Elementwise batched ReLU (`v.max(0.0)`, as the scalar path).
fn relu_batch(src: &Mat, dst: &mut Mat) {
    debug_assert_eq!(src.data.len(), dst.data.len());
    for (d, s) in dst.data.iter_mut().zip(&src.data) {
        *d = s.max(0.0);
    }
}

/// Elementwise batched ReLU gradient gate.
fn relu_backward_batch(pre: &Mat, dy: &Mat, dst: &mut Mat) {
    debug_assert_eq!(pre.data.len(), dst.data.len());
    for ((d, &p), &g) in dst.data.iter_mut().zip(&pre.data).zip(&dy.data) {
        *d = if p > 0.0 { g } else { 0.0 };
    }
}

/// Elementwise `dst += src` in index order.
fn add_assign(dst: &mut Mat, src: &Mat) {
    debug_assert_eq!(dst.data.len(), src.data.len());
    for (d, s) in dst.data.iter_mut().zip(&src.data) {
        *d += s;
    }
}

/// Loss gradient closure: `(outputs, sample index, dout buffer)`.
/// Writes dL/d(out) for one sample into the buffer.
pub(crate) type LossGrad<'a> = &'a (dyn Fn(&[f64], usize, &mut [f64]) + Sync);

/// Hyper-parameters of the shared training driver.
pub(crate) struct TrainSpec {
    pub epochs: usize,
    pub lr: f64,
    pub batch_size: usize,
    pub seed: u64,
    /// XOR'd into the seed for the shuffle RNG stream (each learner keeps
    /// its historical stream constant).
    pub shuffle_xor: u64,
}

/// Shared minibatch Adam driver for both neural learners and both
/// backends (the single training-loop implementation; the heads differ
/// only in their loss closure). Returns the trained network as a
/// [`FlatNet`] regardless of backend.
pub(crate) fn train_flat(
    topo: Topology,
    n_in: usize,
    n_out: usize,
    rows: &Mat,
    spec: &TrainSpec,
    backend: NnBackend,
    loss: LossGrad,
) -> FlatNet {
    let mut init_rng = StdRng::seed_from_u64(spec.seed);
    let mut shuffle_rng = StdRng::seed_from_u64(spec.seed ^ spec.shuffle_xor);
    let bs = spec.batch_size.max(1);
    let mut order: Vec<usize> = (0..rows.rows()).collect();
    match backend {
        NnBackend::Batched => {
            let mut net = FlatNet::init(topo, n_in, n_out, &mut init_rng);
            let n_params = net.n_params();
            let mut opt = Adam::new(n_params, spec.lr);
            let mut grads = vec![0.0; n_params];
            let mut partial = vec![0.0; n_params];
            let mut scratch = net.scratch(TRAIN_MICROBATCH.min(bs));
            let pool = WorkerPool::new();
            for _ in 0..spec.epochs {
                order.shuffle(&mut shuffle_rng);
                for chunk in order.chunks(bs) {
                    grads.fill(0.0);
                    let use_pool = runtime::global_threads() != 1
                        && chunk.len() > TRAIN_MICROBATCH
                        && chunk.len() * n_params >= PARALLEL_GRAIN;
                    if use_pool {
                        let microbatches: Vec<&[usize]> = chunk.chunks(TRAIN_MICROBATCH).collect();
                        let net_ref = &net;
                        let partials = pool.map(microbatches, |_ctx, mb| {
                            let mut scr = net_ref.scratch(mb.len());
                            let mut p = vec![0.0; n_params];
                            microbatch_grad(net_ref, rows, mb, loss, &mut scr, &mut p);
                            p
                        });
                        // Reduce serially in microbatch index order — the
                        // fixed-partition contract (`map` returns results
                        // in submission order).
                        for p in &partials {
                            for (g, v) in grads.iter_mut().zip(p) {
                                *g += v;
                            }
                        }
                    } else {
                        for mb in chunk.chunks(TRAIN_MICROBATCH) {
                            partial.fill(0.0);
                            microbatch_grad(&net, rows, mb, loss, &mut scratch, &mut partial);
                            for (g, v) in grads.iter_mut().zip(&partial) {
                                *g += v;
                            }
                        }
                    }
                    let scale = 1.0 / chunk.len() as f64;
                    grads.iter_mut().for_each(|g| *g *= scale);
                    let t = telemetry::enabled().then(Instant::now);
                    opt.step(net.params_mut(), &grads);
                    if let Some(t) = t {
                        telemetry::record("nn.step_us", t.elapsed().as_micros() as u64);
                    }
                }
            }
            net
        }
        NnBackend::Scalar => {
            let mut net = ScalarNet::init(topo, n_in, n_out, &mut init_rng);
            let n_params = net.n_params();
            let mut opt = Adam::new(n_params, spec.lr);
            let mut grads = vec![0.0; n_params];
            let mut dout = vec![0.0; n_out];
            for _ in 0..spec.epochs {
                order.shuffle(&mut shuffle_rng);
                for chunk in order.chunks(bs) {
                    grads.fill(0.0);
                    // Same fixed microbatch partition and in-order partial
                    // reduction as the batched path, so the two backends
                    // form identical floating-point sums.
                    for mb in chunk.chunks(TRAIN_MICROBATCH) {
                        net.zero_grad();
                        for &i in mb {
                            let (cache, out) = net.forward(rows.row(i));
                            loss(&out, i, &mut dout);
                            net.backward(rows.row(i), &cache, &dout);
                        }
                        let partial = collect_grads(&net.layer_refs());
                        for (g, v) in grads.iter_mut().zip(&partial) {
                            *g += v;
                        }
                    }
                    let scale = 1.0 / chunk.len() as f64;
                    grads.iter_mut().for_each(|g| *g *= scale);
                    let mut params = collect_params(&net.layer_refs());
                    opt.step(&mut params, &grads);
                    let mut layers = net.layer_muts();
                    scatter_params(&mut layers, &params);
                }
            }
            FlatNet::from_scalar(&net)
        }
    }
}

/// Compute one microbatch's gradient partial into the zeroed `grads`
/// slab: gather rows, batched forward, per-row loss gradients, batched
/// backward. Instruments `nn.fwd_us`/`nn.bwd_us` histograms and the
/// `nn.batch_rows` counter.
fn microbatch_grad(
    net: &FlatNet,
    rows: &Mat,
    mb: &[usize],
    loss: LossGrad,
    scr: &mut Scratch,
    grads: &mut [f64],
) {
    scr.set_rows(mb.len());
    for (r, &i) in mb.iter().enumerate() {
        scr.x.row_mut(r).copy_from_slice(rows.row(i));
    }
    telemetry::count("nn.batch_rows", mb.len() as u64);
    let t = telemetry::enabled().then(Instant::now);
    net.forward_batch(scr);
    if let Some(t) = t {
        telemetry::record("nn.fwd_us", t.elapsed().as_micros() as u64);
    }
    for (r, &i) in mb.iter().enumerate() {
        loss(scr.out.row(r), i, scr.dout.row_mut(r));
    }
    let t = telemetry::enabled().then(Instant::now);
    net.backward_batch(scr, grads);
    if let Some(t) = t {
        telemetry::record("nn.bwd_us", t.elapsed().as_micros() as u64);
    }
}

/// Batched inference: network outputs for every row (one output row per
/// input row). Microbatched, and parallelised over the worker pool when
/// the matrix carries enough work — outputs are row-independent, so the
/// result is identical either way.
pub(crate) fn forward_rows(net: &FlatNet, rows: &Mat) -> Mat {
    run_inference(net, rows, false)
}

/// Batched penultimate representations (the ResNet trunk state feeding
/// the head — what `RTDL_N` re-heads with a Random Forest).
pub(crate) fn embed_rows(net: &FlatNet, rows: &Mat) -> Mat {
    run_inference(net, rows, true)
}

fn run_inference(net: &FlatNet, rows: &Mat, embed: bool) -> Mat {
    let out_cols = if embed {
        net.hidden_width()
    } else {
        net.n_out()
    };
    let n = rows.rows();
    let mut out = Mat::zeros(n, out_cols);
    if n == 0 {
        return out;
    }
    let spans: Vec<(usize, usize)> = (0..n)
        .step_by(INFER_MICROBATCH)
        .map(|s| (s, (s + INFER_MICROBATCH).min(n)))
        .collect();
    let run_span = |scr: &mut Scratch, span: (usize, usize), dst: &mut [f64]| {
        let (start, end) = span;
        scr.set_rows(end - start);
        for r in start..end {
            scr.x.row_mut(r - start).copy_from_slice(rows.row(r));
        }
        telemetry::count("nn.batch_rows", (end - start) as u64);
        let t = telemetry::enabled().then(Instant::now);
        net.forward_batch(scr);
        if let Some(t) = t {
            telemetry::record("nn.fwd_us", t.elapsed().as_micros() as u64);
        }
        let src = if embed { scr.embedding() } else { &scr.out };
        dst.copy_from_slice(&src.data);
    };
    if runtime::global_threads() != 1 && spans.len() >= 2 && n * net.n_params() >= PARALLEL_GRAIN {
        let pool = WorkerPool::new();
        let results = pool.map(spans.clone(), |_ctx, span| {
            let mut scr = net.scratch(span.1 - span.0);
            let mut buf = vec![0.0; (span.1 - span.0) * out_cols];
            run_span(&mut scr, span, &mut buf);
            buf
        });
        for (&(s, e), buf) in spans.iter().zip(&results) {
            out.data[s * out_cols..e * out_cols].copy_from_slice(buf);
        }
    } else {
        let mut scr = net.scratch(INFER_MICROBATCH.min(n));
        for &(s, e) in &spans {
            let (a, b) = (s * out_cols, e * out_cols);
            run_span(&mut scr, (s, e), &mut out.data[a..b]);
        }
    }
    out
}

/// Shared input validation for the neural learners (column-major
/// features vs. label count).
pub(crate) fn validate_columns(x: &[Vec<f64>], n_labels: usize, what: &str) -> Result<()> {
    if x.is_empty() || n_labels == 0 {
        return Err(LearnError::EmptyTrainingSet(what.into()));
    }
    for col in x {
        if col.len() != n_labels {
            return Err(LearnError::InvalidParam(
                "feature/label length mismatch".into(),
            ));
        }
    }
    Ok(())
}

/// Per-sample reference implementation ([`NnBackend::Scalar`]): keeps
/// the pre-batching cost profile — `Vec<Vec<f64>>` weights via
/// [`Dense`], fresh `Vec`s per layer per sample, and full parameter
/// collect/scatter copies per optimiser step. The parity suite trains
/// both backends and asserts bit-identical parameter slabs.
struct ScalarNet {
    topo: Topology,
    n_in: usize,
    n_out: usize,
    /// Layers in [`FlatNet`] slab order.
    layers: Vec<Dense>,
}

/// Per-sample forward cache needed by [`ScalarNet::backward`].
struct ScalarCache {
    /// ResNet trunk states: after the stem and after each block.
    z_states: Vec<Vec<f64>>,
    /// Pre-activations per ReLU (MLP: the hidden layer; ResNet: `W₁ z`).
    pres: Vec<Vec<f64>>,
}

impl ScalarNet {
    fn init(topo: Topology, n_in: usize, n_out: usize, rng: &mut StdRng) -> Self {
        let layers = FlatNet::layer_dims(topo, n_in, n_out)
            .into_iter()
            .map(|(i, o)| Dense::new(i, o, rng))
            .collect();
        Self {
            topo,
            n_in,
            n_out,
            layers,
        }
    }

    fn n_params(&self) -> usize {
        self.layers.iter().map(Dense::n_params).sum()
    }

    fn layer_refs(&self) -> Vec<&Dense> {
        self.layers.iter().collect()
    }

    fn layer_muts(&mut self) -> Vec<&mut Dense> {
        self.layers.iter_mut().collect()
    }

    fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    fn forward(&self, x: &[f64]) -> (ScalarCache, Vec<f64>) {
        match self.topo {
            Topology::Mlp { .. } => {
                let pre = self.layers[0].forward(x);
                let h = relu(&pre);
                let out = self.layers[1].forward(&h);
                (
                    ScalarCache {
                        z_states: Vec::new(),
                        pres: vec![pre],
                    },
                    out,
                )
            }
            Topology::ResNet { n_blocks, .. } => {
                let mut z = self.layers[0].forward(x);
                let mut z_states = vec![z.clone()];
                let mut pres = Vec::with_capacity(n_blocks);
                for blk in 0..n_blocks {
                    let pre = self.layers[1 + 2 * blk].forward(&z);
                    let h = relu(&pre);
                    let delta = self.layers[2 + 2 * blk].forward(&h);
                    for (zi, di) in z.iter_mut().zip(&delta) {
                        *zi += di;
                    }
                    pres.push(pre);
                    z_states.push(z.clone());
                }
                let out = self.layers[self.layers.len() - 1].forward(&z);
                (ScalarCache { z_states, pres }, out)
            }
        }
    }

    fn backward(&mut self, x: &[f64], cache: &ScalarCache, dout: &[f64]) {
        match self.topo {
            Topology::Mlp { .. } => {
                let pre = &cache.pres[0];
                let h = relu(pre);
                let dh = self.layers[1].backward(&h, dout);
                let dpre = relu_backward(pre, &dh);
                let _ = self.layers[0].backward(x, &dpre);
            }
            Topology::ResNet { n_blocks, .. } => {
                let z_final = cache.z_states.last().expect("nonempty states");
                let head = self.layers.len() - 1;
                let mut dz = self.layers[head].backward(z_final, dout);
                for blk in (0..n_blocks).rev() {
                    let z_in = &cache.z_states[blk];
                    let pre = &cache.pres[blk];
                    let h = relu(pre);
                    let dh = self.layers[2 + 2 * blk].backward(&h, &dz);
                    let dpre = relu_backward(pre, &dh);
                    let dz_branch = self.layers[1 + 2 * blk].backward(z_in, &dpre);
                    for (d, db) in dz.iter_mut().zip(dz_branch) {
                        *d += db;
                    }
                }
                let _ = self.layers[0].backward(x, &dz);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::softmax_cross_entropy;

    fn sample_rows(n: usize, d: usize, seed: u64) -> Mat {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..d).map(|_| rng.gen_range(-2.0..2.0)).collect())
            .collect();
        Mat::from_rows(&rows)
    }

    #[test]
    fn mat_round_trips_columns() {
        let cols = vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]];
        let m = Mat::from_columns(&cols);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.row(1), &[2.0, 5.0]);
    }

    #[test]
    fn mat_set_rows_reuses_allocation() {
        let mut m = Mat::zeros(8, 4);
        let cap = m.data.capacity();
        m.set_rows(3);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.data.len(), 12);
        m.set_rows(8);
        assert_eq!(m.data.capacity(), cap, "regrow within capacity");
    }

    #[test]
    fn init_matches_scalar_reference_bitwise() {
        for topo in [
            Topology::Mlp { hidden: 5 },
            Topology::ResNet {
                width: 4,
                n_blocks: 2,
            },
        ] {
            let flat = FlatNet::init(topo, 3, 2, &mut StdRng::seed_from_u64(11));
            let scalar = ScalarNet::init(topo, 3, 2, &mut StdRng::seed_from_u64(11));
            let reference = collect_params(&scalar.layer_refs());
            assert_eq!(flat.params().len(), reference.len());
            for (a, b) in flat.params().iter().zip(&reference) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn batched_forward_matches_scalar_bitwise() {
        for topo in [
            Topology::Mlp { hidden: 6 },
            Topology::ResNet {
                width: 5,
                n_blocks: 2,
            },
        ] {
            let net = FlatNet::init(topo, 4, 3, &mut StdRng::seed_from_u64(5));
            let scalar = ScalarNet::init(topo, 4, 3, &mut StdRng::seed_from_u64(5));
            let rows = sample_rows(7, 4, 99);
            let mut scr = net.scratch(7);
            scr.set_rows(7);
            for r in 0..7 {
                scr.x_mut().row_mut(r).copy_from_slice(rows.row(r));
            }
            net.forward_batch(&mut scr);
            for r in 0..7 {
                let (_, out) = scalar.forward(rows.row(r));
                for (a, b) in scr.out().row(r).iter().zip(&out) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{topo:?} row {r}");
                }
            }
        }
    }

    #[test]
    fn batched_backward_matches_scalar_bitwise() {
        for topo in [
            Topology::Mlp { hidden: 6 },
            Topology::ResNet {
                width: 5,
                n_blocks: 2,
            },
        ] {
            let net = FlatNet::init(topo, 4, 3, &mut StdRng::seed_from_u64(8));
            let mut scalar = ScalarNet::init(topo, 4, 3, &mut StdRng::seed_from_u64(8));
            let rows = sample_rows(6, 4, 123);
            let targets = [0usize, 2, 1, 1, 0, 2];

            let mut scr = net.scratch(6);
            scr.set_rows(6);
            for r in 0..6 {
                scr.x_mut().row_mut(r).copy_from_slice(rows.row(r));
            }
            net.forward_batch(&mut scr);
            for (r, &t) in targets.iter().enumerate() {
                let logits: Vec<f64> = scr.out().row(r).to_vec();
                crate::nn::softmax_cross_entropy_into(&logits, t, scr.dout_mut().row_mut(r));
            }
            let mut grads = vec![0.0; net.n_params()];
            net.backward_batch(&mut scr, &mut grads);

            scalar.zero_grad();
            for (r, &t) in targets.iter().enumerate() {
                let (cache, out) = scalar.forward(rows.row(r));
                let (_, dout) = softmax_cross_entropy(&out, t);
                scalar.backward(rows.row(r), &cache, &dout);
            }
            let reference = collect_grads(&scalar.layer_refs());
            for (i, (a, b)) in grads.iter().zip(&reference).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "{topo:?} grad {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn backward_batch_gradient_check() {
        // Finite-difference check of the batched kernels through the
        // residual topology (replaces the per-sample gradient check that
        // lived in resnet.rs).
        let topo = Topology::ResNet {
            width: 4,
            n_blocks: 1,
        };
        let mut net = FlatNet::init(topo, 3, 2, &mut StdRng::seed_from_u64(3));
        let x = [0.5, -1.0, 0.25];
        let target = 1usize;
        let loss_of = |net: &FlatNet| {
            let mut scr = net.scratch(1);
            scr.set_rows(1);
            scr.x_mut().row_mut(0).copy_from_slice(&x);
            net.forward_batch(&mut scr);
            softmax_cross_entropy(scr.out().row(0), target).0
        };
        let mut scr = net.scratch(1);
        scr.set_rows(1);
        scr.x_mut().row_mut(0).copy_from_slice(&x);
        net.forward_batch(&mut scr);
        let logits: Vec<f64> = scr.out().row(0).to_vec();
        crate::nn::softmax_cross_entropy_into(&logits, target, scr.dout_mut().row_mut(0));
        let mut analytic = vec![0.0; net.n_params()];
        net.backward_batch(&mut scr, &mut analytic);

        let eps = 1e-6;
        let n = net.n_params();
        for &idx in &[0usize, 5, n / 2, n - 1] {
            let orig = net.params[idx];
            net.params[idx] = orig + eps;
            let lp = loss_of(&net);
            net.params[idx] = orig - eps;
            let lm = loss_of(&net);
            net.params[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - analytic[idx]).abs() < 1e-4,
                "param {idx}: numeric {numeric} vs analytic {}",
                analytic[idx]
            );
        }
    }

    #[test]
    fn inference_matches_training_forward() {
        let topo = Topology::ResNet {
            width: 5,
            n_blocks: 2,
        };
        let net = FlatNet::init(topo, 4, 2, &mut StdRng::seed_from_u64(21));
        let rows = sample_rows(300, 4, 7); // > one inference microbatch
        let outs = forward_rows(&net, &rows);
        let embeds = embed_rows(&net, &rows);
        assert_eq!(outs.rows(), 300);
        assert_eq!(embeds.cols(), 5);
        let mut scr = net.scratch(1);
        for r in [0usize, 255, 299] {
            scr.set_rows(1);
            scr.x_mut().row_mut(0).copy_from_slice(rows.row(r));
            net.forward_batch(&mut scr);
            for (a, b) in outs.row(r).iter().zip(scr.out().row(0)) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            for (a, b) in embeds.row(r).iter().zip(scr.embedding().row(0)) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn train_backends_bit_identical_on_small_problem() {
        let rows = sample_rows(37, 3, 55); // not a multiple of the microbatch
        let targets: Vec<usize> = (0..37).map(|i| i % 2).collect();
        let spec = TrainSpec {
            epochs: 3,
            lr: 0.01,
            batch_size: 10, // does not divide 37
            seed: 9,
            shuffle_xor: 0x9e3779b97f4a7c15,
        };
        let loss = |out: &[f64], i: usize, d: &mut [f64]| {
            crate::nn::softmax_cross_entropy_into(out, targets[i], d);
        };
        let topo = Topology::ResNet {
            width: 4,
            n_blocks: 2,
        };
        let batched = train_flat(topo, 3, 2, &rows, &spec, NnBackend::Batched, &loss);
        let scalar = train_flat(topo, 3, 2, &rows, &spec, NnBackend::Scalar, &loss);
        assert_eq!(batched.n_params(), scalar.n_params());
        for (i, (a, b)) in batched.params().iter().zip(scalar.params()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "param {i}: {a} vs {b}");
        }
    }

    #[test]
    fn validate_columns_rejects_bad_input() {
        assert!(validate_columns(&[], 0, "nn").is_err());
        assert!(validate_columns(&[vec![1.0, 2.0]], 1, "nn").is_err());
        assert!(validate_columns(&[vec![1.0, 2.0]], 2, "nn").is_ok());
    }
}
