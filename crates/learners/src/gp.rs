//! Gaussian Process regressor with an RBF kernel — the "GP" downstream task
//! used for regression datasets in the paper's Table V.
//!
//! Exact GP inference is O(n³); training rows are capped (subsampled
//! deterministically) so wide experiment sweeps stay tractable. The cap is a
//! documented substitution (DESIGN.md §2): the paper's scikit-learn GP has
//! the same cubic wall and its Table V datasets are small.

use crate::error::{LearnError, Result};
use crate::linalg::{sq_dist, SquareMatrix};
use crate::preprocess::{to_row_major, Standardizer};
use serde::{Deserialize, Serialize};

/// GP hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpConfig {
    /// RBF length scale (applied after z-score standardisation).
    pub length_scale: f64,
    /// Observation noise added to the kernel diagonal.
    pub noise: f64,
    /// Maximum training rows; larger training sets are strided down.
    pub max_train_rows: usize,
}

impl Default for GpConfig {
    fn default() -> Self {
        Self {
            length_scale: 1.0,
            noise: 1e-2,
            max_train_rows: 400,
        }
    }
}

/// Exact GP regressor (RBF kernel, zero prior mean over standardised
/// targets).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaussianProcess {
    /// Hyper-parameters used at fit time.
    pub config: GpConfig,
    scaler: Option<Standardizer>,
    train_rows: Vec<Vec<f64>>,
    alpha: Vec<f64>,
    y_mean: f64,
    y_std: f64,
}

impl GaussianProcess {
    /// New unfitted model.
    pub fn new(config: GpConfig) -> Self {
        Self {
            config,
            scaler: None,
            train_rows: Vec::new(),
            alpha: Vec::new(),
            y_mean: 0.0,
            y_std: 1.0,
        }
    }

    fn kernel(&self, a: &[f64], b: &[f64]) -> f64 {
        let ls2 = self.config.length_scale * self.config.length_scale;
        (-sq_dist(a, b) / (2.0 * ls2)).exp()
    }

    /// Fit on column-major features and real targets.
    pub fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<()> {
        if x.is_empty() || y.is_empty() {
            return Err(LearnError::EmptyTrainingSet("gaussian process".into()));
        }
        if self.config.length_scale <= 0.0 || self.config.noise < 0.0 {
            return Err(LearnError::InvalidParam(
                "length_scale must be > 0 and noise >= 0".into(),
            ));
        }
        for col in x {
            if col.len() != y.len() {
                return Err(LearnError::InvalidParam(
                    "feature/label length mismatch".into(),
                ));
            }
        }
        let scaler = Standardizer::fit(x);
        let xs = scaler.transform(x);
        let mut rows = to_row_major(&xs);
        let mut targets = y.to_vec();

        // Deterministic stride subsample if over the row cap.
        let cap = self.config.max_train_rows.max(2);
        if rows.len() > cap {
            let stride = rows.len() as f64 / cap as f64;
            let picked: Vec<usize> = (0..cap).map(|i| (i as f64 * stride) as usize).collect();
            rows = picked.iter().map(|&i| rows[i].clone()).collect();
            targets = picked.iter().map(|&i| targets[i]).collect();
        }

        let n = rows.len();
        self.y_mean = targets.iter().sum::<f64>() / n as f64;
        let var = targets
            .iter()
            .map(|t| (t - self.y_mean).powi(2))
            .sum::<f64>()
            / n as f64;
        self.y_std = var.sqrt().max(1e-12);
        let yz: Vec<f64> = targets
            .iter()
            .map(|t| (t - self.y_mean) / self.y_std)
            .collect();

        let mut k = SquareMatrix::zeros(n);
        for i in 0..n {
            for j in 0..=i {
                let v = self.kernel(&rows[i], &rows[j]);
                k.set(i, j, v);
                k.set(j, i, v);
            }
        }
        k.add_diagonal(self.config.noise.max(1e-10));
        let l = k
            .cholesky()
            .map_err(|e| LearnError::Numerical(format!("GP kernel factorisation failed: {e}")))?;
        self.alpha = l.cholesky_solve(&yz)?;
        self.train_rows = rows;
        self.scaler = Some(scaler);
        Ok(())
    }

    /// Posterior mean prediction.
    pub fn predict(&self, x: &[Vec<f64>]) -> Result<Vec<f64>> {
        let scaler = self
            .scaler
            .as_ref()
            .ok_or(LearnError::NotFitted("GaussianProcess"))?;
        if x.len() != scaler.n_features() {
            return Err(LearnError::DimensionMismatch {
                fitted: scaler.n_features(),
                got: x.len(),
            });
        }
        let xs = scaler.transform(x);
        let rows = to_row_major(&xs);
        Ok(rows
            .iter()
            .map(|row| {
                let kz: f64 = self
                    .train_rows
                    .iter()
                    .zip(&self.alpha)
                    .map(|(tr, a)| self.kernel(row, tr) * a)
                    .sum();
                kz * self.y_std + self.y_mean
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::one_minus_rae;

    #[test]
    fn interpolates_smooth_function() {
        let xs: Vec<f64> = (0..60).map(|i| i as f64 / 10.0).collect();
        let y: Vec<f64> = xs.iter().map(|v| (v).sin()).collect();
        let mut gp = GaussianProcess::new(GpConfig::default());
        gp.fit(std::slice::from_ref(&xs), &y).unwrap();
        let preds = gp.predict(&[xs]).unwrap();
        let score = one_minus_rae(&y, &preds).unwrap();
        assert!(score > 0.95, "1-rae {score}");
    }

    #[test]
    fn generalizes_between_training_points() {
        let xs: Vec<f64> = (0..30).map(|i| i as f64 / 5.0).collect();
        let y: Vec<f64> = xs.iter().map(|v| v * v).collect();
        let mut gp = GaussianProcess::new(GpConfig::default());
        gp.fit(&[xs], &y).unwrap();
        let test_x = vec![vec![1.1, 2.3, 3.7]];
        let preds = gp.predict(&test_x).unwrap();
        for (p, t) in preds.iter().zip([1.21, 5.29, 13.69]) {
            assert!((p - t).abs() < 1.0, "pred {p} vs {t}");
        }
    }

    #[test]
    fn row_cap_subsamples() {
        let xs: Vec<f64> = (0..1000).map(|i| i as f64 / 100.0).collect();
        let y: Vec<f64> = xs.iter().map(|v| 2.0 * v).collect();
        let mut gp = GaussianProcess::new(GpConfig {
            max_train_rows: 50,
            ..Default::default()
        });
        gp.fit(std::slice::from_ref(&xs), &y).unwrap();
        assert_eq!(gp.train_rows.len(), 50);
        let score = one_minus_rae(&y, &gp.predict(&[xs]).unwrap()).unwrap();
        assert!(score > 0.9, "1-rae {score}");
    }

    #[test]
    fn constant_target_predicts_constant() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let y = vec![3.5; 20];
        let mut gp = GaussianProcess::new(GpConfig::default());
        gp.fit(std::slice::from_ref(&xs), &y).unwrap();
        for p in gp.predict(&[xs]).unwrap() {
            assert!((p - 3.5).abs() < 0.1);
        }
    }

    #[test]
    fn errors_on_bad_input() {
        let mut gp = GaussianProcess::new(GpConfig::default());
        assert!(gp.fit(&[], &[]).is_err());
        assert!(gp.fit(&[vec![1.0, 2.0]], &[1.0]).is_err());
        assert!(gp.predict(&[vec![1.0]]).is_err());
        let bad = GpConfig {
            length_scale: 0.0,
            ..Default::default()
        };
        assert!(GaussianProcess::new(bad)
            .fit(&[vec![1.0, 2.0]], &[1.0, 2.0])
            .is_err());
    }

    #[test]
    fn duplicate_rows_survive_via_noise_jitter() {
        let xs = vec![1.0, 1.0, 1.0, 2.0];
        let y = vec![0.0, 0.0, 0.0, 1.0];
        let mut gp = GaussianProcess::new(GpConfig::default());
        gp.fit(&[xs], &y).unwrap(); // duplicated kernel rows need the jitter
    }
}
