//! Gaussian Process regressor with an RBF kernel — the "GP" downstream task
//! used for regression datasets in the paper's Table V.
//!
//! Exact GP inference is O(n³); training rows are capped (subsampled
//! deterministically) so wide experiment sweeps stay tractable. The cap is a
//! documented substitution (DESIGN.md §2): the paper's scikit-learn GP has
//! the same cubic wall and its Table V datasets are small.
//!
//! Perf notes (DESIGN.md §10, §13): training rows live in a contiguous
//! row-major [`Mat`], the kernel matrix is filled from row slices with
//! the RBF distance reduced through the pinned SIMD lane tree
//! (`linalg::sq_dist` → `simd::sq_dist`), the factorisation uses the
//! row-slice Cholesky (inner products on the same tree) with a bounded
//! jitter-escalation retry for numerically non-PD kernels, and posterior
//! mean prediction is chunked over the worker pool for large test sets
//! (each row's kernel-weighted sum over training rows keeps its
//! ascending sequential order — that outer sum is part of the
//! bit-reproducibility contract and is *not* lane-reassociated).

use crate::dense::Mat;
use crate::error::{LearnError, Result};
use crate::linalg::{sq_dist, SquareMatrix};
use crate::preprocess::{to_row_major, Standardizer};
use runtime::WorkerPool;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Rows per worker-pool task when predicting.
const PREDICT_CHUNK: usize = 256;

/// Minimum `test rows × train rows` product before prediction is worth
/// shipping to the worker pool.
const PARALLEL_GRAIN: usize = 262_144;

/// Starting diagonal jitter for the Cholesky retry (escalates ×10 per
/// attempt, on top of the configured observation noise).
const INITIAL_JITTER: f64 = 1e-10;

/// Bounded number of jitter-escalation retries (largest jitter tried:
/// `INITIAL_JITTER × 10^(JITTER_ATTEMPTS-1)` = 1e-4).
const JITTER_ATTEMPTS: usize = 7;

/// GP hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpConfig {
    /// RBF length scale (applied after z-score standardisation).
    pub length_scale: f64,
    /// Observation noise added to the kernel diagonal.
    pub noise: f64,
    /// Maximum training rows; larger training sets are strided down.
    pub max_train_rows: usize,
}

impl Default for GpConfig {
    fn default() -> Self {
        Self {
            length_scale: 1.0,
            noise: 1e-2,
            max_train_rows: 400,
        }
    }
}

/// Exact GP regressor (RBF kernel, zero prior mean over standardised
/// targets).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaussianProcess {
    /// Hyper-parameters used at fit time.
    pub config: GpConfig,
    scaler: Option<Standardizer>,
    train: Mat,
    alpha: Vec<f64>,
    y_mean: f64,
    y_std: f64,
}

impl GaussianProcess {
    /// New unfitted model.
    pub fn new(config: GpConfig) -> Self {
        Self {
            config,
            scaler: None,
            train: Mat::zeros(0, 0),
            alpha: Vec::new(),
            y_mean: 0.0,
            y_std: 1.0,
        }
    }

    fn kernel(&self, a: &[f64], b: &[f64]) -> f64 {
        let ls2 = self.config.length_scale * self.config.length_scale;
        (-sq_dist(a, b) / (2.0 * ls2)).exp()
    }

    /// Fit on column-major features and real targets.
    pub fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<()> {
        if x.is_empty() || y.is_empty() {
            return Err(LearnError::EmptyTrainingSet("gaussian process".into()));
        }
        if self.config.length_scale <= 0.0 || self.config.noise < 0.0 {
            return Err(LearnError::InvalidParam(
                "length_scale must be > 0 and noise >= 0".into(),
            ));
        }
        for col in x {
            if col.len() != y.len() {
                return Err(LearnError::InvalidParam(
                    "feature/label length mismatch".into(),
                ));
            }
        }
        let scaler = Standardizer::fit(x);
        let xs = scaler.transform(x);
        let mut rows = to_row_major(&xs);
        let mut targets = y.to_vec();

        // Deterministic stride subsample if over the row cap.
        let cap = self.config.max_train_rows.max(2);
        if rows.len() > cap {
            let stride = rows.len() as f64 / cap as f64;
            let picked: Vec<usize> = (0..cap).map(|i| (i as f64 * stride) as usize).collect();
            rows = picked.iter().map(|&i| rows[i].clone()).collect();
            targets = picked.iter().map(|&i| targets[i]).collect();
        }
        let train = Mat::from_rows(&rows);

        let n = train.rows();
        self.y_mean = targets.iter().sum::<f64>() / n as f64;
        let var = targets
            .iter()
            .map(|t| (t - self.y_mean).powi(2))
            .sum::<f64>()
            / n as f64;
        self.y_std = var.sqrt().max(1e-12);
        let yz: Vec<f64> = targets
            .iter()
            .map(|t| (t - self.y_mean) / self.y_std)
            .collect();

        // Symmetric RBF fill from contiguous row slices.
        let mut k = SquareMatrix::zeros(n);
        for i in 0..n {
            let ri = train.row(i);
            for j in 0..=i {
                let v = self.kernel(ri, train.row(j));
                k.set(i, j, v);
                k.set(j, i, v);
            }
        }
        k.add_diagonal(self.config.noise.max(1e-10));
        let t = telemetry::enabled().then(Instant::now);
        let (l, _jitter) = k
            .cholesky_jittered(INITIAL_JITTER, JITTER_ATTEMPTS)
            .map_err(|e| LearnError::Numerical(format!("GP kernel factorisation failed: {e}")))?;
        if let Some(t) = t {
            telemetry::record("gp.chol_us", t.elapsed().as_micros() as u64);
        }
        self.alpha = l.cholesky_solve(&yz)?;
        self.train = train;
        self.scaler = Some(scaler);
        Ok(())
    }

    /// Posterior mean for one standardised test row: the kernel sum over
    /// training rows in ascending order (the order is part of the
    /// bit-reproducibility contract).
    fn predict_row(&self, row: &[f64]) -> f64 {
        let mut kz = 0.0;
        for (t, a) in (0..self.train.rows()).zip(&self.alpha) {
            kz += self.kernel(row, self.train.row(t)) * a;
        }
        kz * self.y_std + self.y_mean
    }

    /// Posterior mean prediction.
    pub fn predict(&self, x: &[Vec<f64>]) -> Result<Vec<f64>> {
        let scaler = self
            .scaler
            .as_ref()
            .ok_or(LearnError::NotFitted("GaussianProcess"))?;
        if x.len() != scaler.n_features() {
            return Err(LearnError::DimensionMismatch {
                fitted: scaler.n_features(),
                got: x.len(),
            });
        }
        let rows = Mat::from_columns(&scaler.transform(x));
        let n = rows.rows();
        let parallel = runtime::global_threads() != 1
            && n > PREDICT_CHUNK
            && n * self.train.rows() >= PARALLEL_GRAIN;
        if parallel {
            let spans: Vec<(usize, usize)> = (0..n)
                .step_by(PREDICT_CHUNK)
                .map(|s| (s, (s + PREDICT_CHUNK).min(n)))
                .collect();
            let pool = WorkerPool::new();
            let chunks = pool.map(spans, |_ctx, (s, e)| {
                (s..e).map(|r| self.predict_row(rows.row(r))).collect()
            });
            Ok(chunks.into_iter().flat_map(Vec::into_iter).collect())
        } else {
            Ok((0..n).map(|r| self.predict_row(rows.row(r))).collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::one_minus_rae;

    #[test]
    fn interpolates_smooth_function() {
        let xs: Vec<f64> = (0..60).map(|i| i as f64 / 10.0).collect();
        let y: Vec<f64> = xs.iter().map(|v| (v).sin()).collect();
        let mut gp = GaussianProcess::new(GpConfig::default());
        gp.fit(std::slice::from_ref(&xs), &y).unwrap();
        let preds = gp.predict(&[xs]).unwrap();
        let score = one_minus_rae(&y, &preds).unwrap();
        assert!(score > 0.95, "1-rae {score}");
    }

    #[test]
    fn generalizes_between_training_points() {
        let xs: Vec<f64> = (0..30).map(|i| i as f64 / 5.0).collect();
        let y: Vec<f64> = xs.iter().map(|v| v * v).collect();
        let mut gp = GaussianProcess::new(GpConfig::default());
        gp.fit(&[xs], &y).unwrap();
        let test_x = vec![vec![1.1, 2.3, 3.7]];
        let preds = gp.predict(&test_x).unwrap();
        for (p, t) in preds.iter().zip([1.21, 5.29, 13.69]) {
            assert!((p - t).abs() < 1.0, "pred {p} vs {t}");
        }
    }

    #[test]
    fn row_cap_subsamples() {
        let xs: Vec<f64> = (0..1000).map(|i| i as f64 / 100.0).collect();
        let y: Vec<f64> = xs.iter().map(|v| 2.0 * v).collect();
        let mut gp = GaussianProcess::new(GpConfig {
            max_train_rows: 50,
            ..Default::default()
        });
        gp.fit(std::slice::from_ref(&xs), &y).unwrap();
        assert_eq!(gp.train.rows(), 50);
        let score = one_minus_rae(&y, &gp.predict(&[xs]).unwrap()).unwrap();
        assert!(score > 0.9, "1-rae {score}");
    }

    #[test]
    fn constant_target_predicts_constant() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let y = vec![3.5; 20];
        let mut gp = GaussianProcess::new(GpConfig::default());
        gp.fit(std::slice::from_ref(&xs), &y).unwrap();
        for p in gp.predict(&[xs]).unwrap() {
            assert!((p - 3.5).abs() < 0.1);
        }
    }

    #[test]
    fn errors_on_bad_input() {
        let mut gp = GaussianProcess::new(GpConfig::default());
        assert!(gp.fit(&[], &[]).is_err());
        assert!(gp.fit(&[vec![1.0, 2.0]], &[1.0]).is_err());
        assert!(gp.predict(&[vec![1.0]]).is_err());
        let bad = GpConfig {
            length_scale: 0.0,
            ..Default::default()
        };
        assert!(GaussianProcess::new(bad)
            .fit(&[vec![1.0, 2.0]], &[1.0, 2.0])
            .is_err());
    }

    #[test]
    fn duplicate_rows_survive_via_noise_jitter() {
        let xs = vec![1.0, 1.0, 1.0, 2.0];
        let y = vec![0.0, 0.0, 0.0, 1.0];
        let mut gp = GaussianProcess::new(GpConfig::default());
        gp.fit(&[xs], &y).unwrap(); // duplicated kernel rows need the jitter
    }

    #[test]
    fn near_singular_kernel_recovers_via_jitter_escalation() {
        // Zero configured noise + many duplicated rows: the kernel matrix
        // is numerically rank-deficient, so the fit leans on the floor
        // noise and, when rounding eats that, the escalating-jitter retry
        // (escalation itself is unit-tested in linalg.rs on a matrix
        // scaled so the first attempts genuinely fail).
        let xs = vec![(0..12).map(|i| f64::from(i / 4)).collect::<Vec<f64>>()];
        let y: Vec<f64> = (0..12).map(|i| f64::from(i / 4)).collect();
        let mut gp = GaussianProcess::new(GpConfig {
            noise: 0.0,
            ..Default::default()
        });
        gp.fit(&xs, &y).unwrap();
        assert_eq!(gp.predict(&xs).unwrap().len(), 12);
    }
}
