//! Multi-layer perceptron — the "MLP" downstream task of the paper's
//! Table V. One hidden ReLU layer by default, trained with Adam on softmax
//! cross-entropy (classification) or MSE (regression).
//!
//! Training and inference run through the flat batched kernels in
//! [`crate::dense`] (shared driver, one Adam loop); set
//! [`MlpConfig::backend`] to [`NnBackend::Scalar`] to use the per-sample
//! testing reference instead — the two are bit-identical.

use crate::dense::{
    forward_rows, train_flat, validate_columns, FlatNet, Mat, NnBackend, Topology, TrainSpec,
};
use crate::error::{LearnError, Result};
use crate::nn::softmax_cross_entropy_into;
use crate::preprocess::Standardizer;
use crate::tree::argmax;
use serde::{Deserialize, Serialize};

/// Seed stream for the minibatch shuffle RNG (kept distinct from the
/// init RNG, and stable across refactors for reproducibility).
const SHUFFLE_XOR: u64 = 0x9e3779b97f4a7c15;

/// MLP hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MlpConfig {
    /// Hidden layer width.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate (the paper uses 0.01).
    pub lr: f64,
    /// Mini-batch size (the paper uses 32).
    pub batch_size: usize,
    /// Init / shuffle seed.
    pub seed: u64,
    /// Kernel implementation (batched by default; scalar is the
    /// bit-identical per-sample testing reference).
    pub backend: NnBackend,
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self {
            hidden: 32,
            epochs: 40,
            lr: 0.01,
            batch_size: 32,
            seed: 0,
            backend: NnBackend::Batched,
        }
    }
}

impl MlpConfig {
    fn train_spec(&self) -> TrainSpec {
        TrainSpec {
            epochs: self.epochs,
            lr: self.lr,
            batch_size: self.batch_size,
            seed: self.seed,
            shuffle_xor: SHUFFLE_XOR,
        }
    }
}

/// MLP classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpClassifier {
    /// Hyper-parameters used at fit time.
    pub config: MlpConfig,
    net: Option<FlatNet>,
    scaler: Option<Standardizer>,
    n_classes: usize,
}

impl MlpClassifier {
    /// New unfitted classifier.
    pub fn new(config: MlpConfig) -> Self {
        Self {
            config,
            net: None,
            scaler: None,
            n_classes: 0,
        }
    }

    /// Fit on column-major features and class labels.
    pub fn fit(&mut self, x: &[Vec<f64>], y: &[usize], n_classes: usize) -> Result<()> {
        validate_columns(x, y.len(), "mlp")?;
        if n_classes < 2 {
            return Err(LearnError::InvalidParam("need at least 2 classes".into()));
        }
        let scaler = Standardizer::fit(x);
        let rows = Mat::from_columns(&scaler.transform(x));
        let net = train_flat(
            Topology::Mlp {
                hidden: self.config.hidden,
            },
            x.len(),
            n_classes,
            &rows,
            &self.config.train_spec(),
            self.config.backend,
            &|out, i, d| softmax_cross_entropy_into(out, y[i], d),
        );
        self.net = Some(net);
        self.scaler = Some(scaler);
        self.n_classes = n_classes;
        Ok(())
    }

    /// Class predictions.
    pub fn predict(&self, x: &[Vec<f64>]) -> Result<Vec<usize>> {
        let (net, scaler) = match (&self.net, &self.scaler) {
            (Some(n), Some(s)) => (n, s),
            _ => return Err(LearnError::NotFitted("MlpClassifier")),
        };
        if x.len() != scaler.n_features() {
            return Err(LearnError::DimensionMismatch {
                fitted: scaler.n_features(),
                got: x.len(),
            });
        }
        let rows = Mat::from_columns(&scaler.transform(x));
        let outs = forward_rows(net, &rows);
        Ok((0..outs.rows()).map(|r| argmax(outs.row(r))).collect())
    }

    /// The trained flat parameter slab (testing / benchmarking hook for
    /// bit-level parity assertions across backends and thread counts).
    pub fn trained_params(&self) -> Option<&[f64]> {
        self.net.as_ref().map(FlatNet::params)
    }
}

/// MLP regressor (single linear output, MSE loss, targets standardised).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpRegressor {
    /// Hyper-parameters used at fit time.
    pub config: MlpConfig,
    net: Option<FlatNet>,
    scaler: Option<Standardizer>,
    y_mean: f64,
    y_std: f64,
}

impl MlpRegressor {
    /// New unfitted regressor.
    pub fn new(config: MlpConfig) -> Self {
        Self {
            config,
            net: None,
            scaler: None,
            y_mean: 0.0,
            y_std: 1.0,
        }
    }

    /// Fit on column-major features and real targets.
    pub fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<()> {
        validate_columns(x, y.len(), "mlp")?;
        let scaler = Standardizer::fit(x);
        let rows = Mat::from_columns(&scaler.transform(x));
        self.y_mean = y.iter().sum::<f64>() / y.len() as f64;
        let var = y.iter().map(|t| (t - self.y_mean).powi(2)).sum::<f64>() / y.len() as f64;
        self.y_std = var.sqrt().max(1e-12);
        let yz: Vec<f64> = y.iter().map(|t| (t - self.y_mean) / self.y_std).collect();
        let net = train_flat(
            Topology::Mlp {
                hidden: self.config.hidden,
            },
            x.len(),
            1,
            &rows,
            &self.config.train_spec(),
            self.config.backend,
            &|out, i, d| d[0] = 2.0 * (out[0] - yz[i]),
        );
        self.net = Some(net);
        self.scaler = Some(scaler);
        Ok(())
    }

    /// Target predictions.
    pub fn predict(&self, x: &[Vec<f64>]) -> Result<Vec<f64>> {
        let (net, scaler) = match (&self.net, &self.scaler) {
            (Some(n), Some(s)) => (n, s),
            _ => return Err(LearnError::NotFitted("MlpRegressor")),
        };
        if x.len() != scaler.n_features() {
            return Err(LearnError::DimensionMismatch {
                fitted: scaler.n_features(),
                got: x.len(),
            });
        }
        let rows = Mat::from_columns(&scaler.transform(x));
        let outs = forward_rows(net, &rows);
        Ok((0..outs.rows())
            .map(|r| outs.row(r)[0] * self.y_std + self.y_mean)
            .collect())
    }

    /// The trained flat parameter slab (testing / benchmarking hook).
    pub fn trained_params(&self) -> Option<&[f64]> {
        self.net.as_ref().map(FlatNet::params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{accuracy, one_minus_rae};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn classifier_learns_xor() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut a = Vec::new();
        let mut b = Vec::new();
        let mut y = Vec::new();
        for _ in 0..400 {
            let av: f64 = rng.gen_range(-1.0..1.0);
            let bv: f64 = rng.gen_range(-1.0..1.0);
            a.push(av);
            b.push(bv);
            y.push(usize::from((av > 0.0) != (bv > 0.0)));
        }
        let x = vec![a, b];
        let mut m = MlpClassifier::new(MlpConfig {
            epochs: 120,
            ..Default::default()
        });
        m.fit(&x, &y, 2).unwrap();
        let acc = accuracy(&y, &m.predict(&x).unwrap()).unwrap();
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn regressor_fits_quadratic() {
        let xs: Vec<f64> = (0..200).map(|i| (i as f64 - 100.0) / 25.0).collect();
        let y: Vec<f64> = xs.iter().map(|v| v * v).collect();
        let x = vec![xs];
        let mut m = MlpRegressor::new(MlpConfig {
            epochs: 200,
            hidden: 24,
            ..Default::default()
        });
        m.fit(&x, &y).unwrap();
        let score = one_minus_rae(&y, &m.predict(&x).unwrap()).unwrap();
        assert!(score > 0.85, "1-rae {score}");
    }

    #[test]
    fn deterministic_given_seed() {
        let x = vec![(0..50).map(|i| i as f64).collect::<Vec<_>>()];
        let y: Vec<usize> = (0..50).map(|i| usize::from(i >= 25)).collect();
        let mut a = MlpClassifier::new(MlpConfig::default());
        let mut b = MlpClassifier::new(MlpConfig::default());
        a.fit(&x, &y, 2).unwrap();
        b.fit(&x, &y, 2).unwrap();
        assert_eq!(a.predict(&x).unwrap(), b.predict(&x).unwrap());
        for (p, q) in a
            .trained_params()
            .unwrap()
            .iter()
            .zip(b.trained_params().unwrap())
        {
            assert_eq!(p.to_bits(), q.to_bits());
        }
    }

    #[test]
    fn scalar_backend_trains_and_predicts() {
        let x = vec![(0..60).map(|i| i as f64 / 10.0).collect::<Vec<_>>()];
        let y: Vec<usize> = (0..60).map(|i| usize::from(i >= 30)).collect();
        let mut m = MlpClassifier::new(MlpConfig {
            epochs: 30,
            backend: NnBackend::Scalar,
            ..Default::default()
        });
        m.fit(&x, &y, 2).unwrap();
        let acc = accuracy(&y, &m.predict(&x).unwrap()).unwrap();
        assert!(acc > 0.9, "scalar-backend accuracy {acc}");
    }

    #[test]
    fn errors_on_bad_input() {
        let mut m = MlpClassifier::new(MlpConfig::default());
        assert!(m.fit(&[], &[], 2).is_err());
        assert!(m.predict(&[vec![1.0]]).is_err());
        let mut r = MlpRegressor::new(MlpConfig::default());
        assert!(r.fit(&[vec![1.0, 2.0]], &[1.0]).is_err());
        assert!(r.predict(&[vec![1.0]]).is_err());
    }
}
