//! Multi-layer perceptron — the "MLP" downstream task of the paper's
//! Table V. One hidden ReLU layer by default, trained with Adam on softmax
//! cross-entropy (classification) or MSE (regression).

use crate::error::{LearnError, Result};
use crate::nn::{
    collect_grads, collect_params, mse_loss, relu, relu_backward, scatter_params,
    softmax_cross_entropy, Adam, Dense,
};
use crate::preprocess::{to_row_major, Standardizer};
use crate::tree::argmax;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// MLP hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MlpConfig {
    /// Hidden layer width.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate (the paper uses 0.01).
    pub lr: f64,
    /// Mini-batch size (the paper uses 32).
    pub batch_size: usize,
    /// Init / shuffle seed.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self {
            hidden: 32,
            epochs: 40,
            lr: 0.01,
            batch_size: 32,
            seed: 0,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct MlpNet {
    l1: Dense,
    l2: Dense,
}

impl MlpNet {
    fn forward(&self, x: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let pre = self.l1.forward(x);
        let h = relu(&pre);
        let out = self.l2.forward(&h);
        (pre, out)
    }

    fn backward(&mut self, x: &[f64], pre: &[f64], dout: &[f64]) {
        let h = relu(pre);
        let dh = self.l2.backward(&h, dout);
        let dpre = relu_backward(pre, &dh);
        let _ = self.l1.backward(x, &dpre);
    }
}

/// Train the two-layer network with Adam; shared by both MLP heads.
fn train_net(
    net: &mut MlpNet,
    rows: &[Vec<f64>],
    cfg: &MlpConfig,
    mut loss_grad: impl FnMut(&[f64], usize) -> (f64, Vec<f64>),
) {
    let n_params = net.l1.n_params() + net.l2.n_params();
    let mut opt = Adam::new(n_params, cfg.lr);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x9e3779b97f4a7c15);
    let mut order: Vec<usize> = (0..rows.len()).collect();
    for _ in 0..cfg.epochs {
        order.shuffle(&mut rng);
        for chunk in order.chunks(cfg.batch_size.max(1)) {
            net.l1.zero_grad();
            net.l2.zero_grad();
            for &i in chunk {
                let (pre, out) = net.forward(&rows[i]);
                let (_, dout) = loss_grad(&out, i);
                net.backward(&rows[i], &pre, &dout);
            }
            let scale = 1.0 / chunk.len() as f64;
            let mut params = collect_params(&[&net.l1, &net.l2]);
            let mut grads = collect_grads(&[&net.l1, &net.l2]);
            grads.iter_mut().for_each(|g| *g *= scale);
            opt.step(&mut params, &grads);
            scatter_params(&mut [&mut net.l1, &mut net.l2], &params);
        }
    }
}

fn validate(x: &[Vec<f64>], n_labels: usize) -> Result<()> {
    if x.is_empty() || n_labels == 0 {
        return Err(LearnError::EmptyTrainingSet("mlp".into()));
    }
    for col in x {
        if col.len() != n_labels {
            return Err(LearnError::InvalidParam(
                "feature/label length mismatch".into(),
            ));
        }
    }
    Ok(())
}

/// MLP classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpClassifier {
    /// Hyper-parameters used at fit time.
    pub config: MlpConfig,
    net: Option<MlpNet>,
    scaler: Option<Standardizer>,
    n_classes: usize,
}

impl MlpClassifier {
    /// New unfitted classifier.
    pub fn new(config: MlpConfig) -> Self {
        Self {
            config,
            net: None,
            scaler: None,
            n_classes: 0,
        }
    }

    /// Fit on column-major features and class labels.
    pub fn fit(&mut self, x: &[Vec<f64>], y: &[usize], n_classes: usize) -> Result<()> {
        validate(x, y.len())?;
        if n_classes < 2 {
            return Err(LearnError::InvalidParam("need at least 2 classes".into()));
        }
        let scaler = Standardizer::fit(x);
        let rows = to_row_major(&scaler.transform(x));
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut net = MlpNet {
            l1: Dense::new(x.len(), self.config.hidden, &mut rng),
            l2: Dense::new(self.config.hidden, n_classes, &mut rng),
        };
        train_net(&mut net, &rows, &self.config, |out, i| {
            softmax_cross_entropy(out, y[i])
        });
        self.net = Some(net);
        self.scaler = Some(scaler);
        self.n_classes = n_classes;
        Ok(())
    }

    /// Class predictions.
    pub fn predict(&self, x: &[Vec<f64>]) -> Result<Vec<usize>> {
        let (net, scaler) = match (&self.net, &self.scaler) {
            (Some(n), Some(s)) => (n, s),
            _ => return Err(LearnError::NotFitted("MlpClassifier")),
        };
        if x.len() != scaler.n_features() {
            return Err(LearnError::DimensionMismatch {
                fitted: scaler.n_features(),
                got: x.len(),
            });
        }
        let rows = to_row_major(&scaler.transform(x));
        Ok(rows
            .iter()
            .map(|row| {
                let (_, out) = net.forward(row);
                argmax(&out)
            })
            .collect())
    }
}

/// MLP regressor (single linear output, MSE loss, targets standardised).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpRegressor {
    /// Hyper-parameters used at fit time.
    pub config: MlpConfig,
    net: Option<MlpNet>,
    scaler: Option<Standardizer>,
    y_mean: f64,
    y_std: f64,
}

impl MlpRegressor {
    /// New unfitted regressor.
    pub fn new(config: MlpConfig) -> Self {
        Self {
            config,
            net: None,
            scaler: None,
            y_mean: 0.0,
            y_std: 1.0,
        }
    }

    /// Fit on column-major features and real targets.
    pub fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<()> {
        validate(x, y.len())?;
        let scaler = Standardizer::fit(x);
        let rows = to_row_major(&scaler.transform(x));
        self.y_mean = y.iter().sum::<f64>() / y.len() as f64;
        let var = y.iter().map(|t| (t - self.y_mean).powi(2)).sum::<f64>() / y.len() as f64;
        self.y_std = var.sqrt().max(1e-12);
        let yz: Vec<f64> = y.iter().map(|t| (t - self.y_mean) / self.y_std).collect();

        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut net = MlpNet {
            l1: Dense::new(x.len(), self.config.hidden, &mut rng),
            l2: Dense::new(self.config.hidden, 1, &mut rng),
        };
        train_net(&mut net, &rows, &self.config, |out, i| {
            let (l, g) = mse_loss(out[0], yz[i]);
            (l, vec![g])
        });
        self.net = Some(net);
        self.scaler = Some(scaler);
        Ok(())
    }

    /// Target predictions.
    pub fn predict(&self, x: &[Vec<f64>]) -> Result<Vec<f64>> {
        let (net, scaler) = match (&self.net, &self.scaler) {
            (Some(n), Some(s)) => (n, s),
            _ => return Err(LearnError::NotFitted("MlpRegressor")),
        };
        if x.len() != scaler.n_features() {
            return Err(LearnError::DimensionMismatch {
                fitted: scaler.n_features(),
                got: x.len(),
            });
        }
        let rows = to_row_major(&scaler.transform(x));
        Ok(rows
            .iter()
            .map(|row| {
                let (_, out) = net.forward(row);
                out[0] * self.y_std + self.y_mean
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{accuracy, one_minus_rae};
    use rand::Rng;

    #[test]
    fn classifier_learns_xor() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut a = Vec::new();
        let mut b = Vec::new();
        let mut y = Vec::new();
        for _ in 0..400 {
            let av: f64 = rng.gen_range(-1.0..1.0);
            let bv: f64 = rng.gen_range(-1.0..1.0);
            a.push(av);
            b.push(bv);
            y.push(usize::from((av > 0.0) != (bv > 0.0)));
        }
        let x = vec![a, b];
        let mut m = MlpClassifier::new(MlpConfig {
            epochs: 120,
            ..Default::default()
        });
        m.fit(&x, &y, 2).unwrap();
        let acc = accuracy(&y, &m.predict(&x).unwrap()).unwrap();
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn regressor_fits_quadratic() {
        let xs: Vec<f64> = (0..200).map(|i| (i as f64 - 100.0) / 25.0).collect();
        let y: Vec<f64> = xs.iter().map(|v| v * v).collect();
        let x = vec![xs];
        let mut m = MlpRegressor::new(MlpConfig {
            epochs: 200,
            hidden: 24,
            ..Default::default()
        });
        m.fit(&x, &y).unwrap();
        let score = one_minus_rae(&y, &m.predict(&x).unwrap()).unwrap();
        assert!(score > 0.85, "1-rae {score}");
    }

    #[test]
    fn deterministic_given_seed() {
        let x = vec![(0..50).map(|i| i as f64).collect::<Vec<_>>()];
        let y: Vec<usize> = (0..50).map(|i| usize::from(i >= 25)).collect();
        let mut a = MlpClassifier::new(MlpConfig::default());
        let mut b = MlpClassifier::new(MlpConfig::default());
        a.fit(&x, &y, 2).unwrap();
        b.fit(&x, &y, 2).unwrap();
        assert_eq!(a.predict(&x).unwrap(), b.predict(&x).unwrap());
    }

    #[test]
    fn errors_on_bad_input() {
        let mut m = MlpClassifier::new(MlpConfig::default());
        assert!(m.fit(&[], &[], 2).is_err());
        assert!(m.predict(&[vec![1.0]]).is_err());
        let mut r = MlpRegressor::new(MlpConfig::default());
        assert!(r.fit(&[vec![1.0, 2.0]], &[1.0]).is_err());
        assert!(r.predict(&[vec![1.0]]).is_err());
    }
}
