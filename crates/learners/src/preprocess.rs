//! Feature preprocessing shared by the gradient-based learners
//! (linear models, MLP, ResNet, GP): per-column standardisation.

use serde::{Deserialize, Serialize};

/// Per-feature z-score standardiser fitted on training data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Standardizer {
    /// Fit on column-major features; constant columns get std 1 so they map
    /// to all-zeros rather than dividing by zero.
    pub fn fit(x: &[Vec<f64>]) -> Self {
        let means: Vec<f64> = x
            .iter()
            .map(|col| {
                if col.is_empty() {
                    0.0
                } else {
                    col.iter().sum::<f64>() / col.len() as f64
                }
            })
            .collect();
        let stds: Vec<f64> = x
            .iter()
            .zip(&means)
            .map(|(col, &m)| {
                if col.len() < 2 {
                    return 1.0;
                }
                let var = col.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / col.len() as f64;
                let s = var.sqrt();
                if s < 1e-12 {
                    1.0
                } else {
                    s
                }
            })
            .collect();
        Self { means, stds }
    }

    /// Number of features the standardiser was fitted on.
    pub fn n_features(&self) -> usize {
        self.means.len()
    }

    /// Transform column-major features into standardised column-major copies.
    pub fn transform(&self, x: &[Vec<f64>]) -> Vec<Vec<f64>> {
        x.iter()
            .enumerate()
            .map(|(j, col)| {
                let (m, s) = (self.means[j], self.stds[j]);
                col.iter().map(|v| (v - m) / s).collect()
            })
            .collect()
    }

    /// Transform a single row-major sample in place.
    pub fn transform_row(&self, row: &mut [f64]) {
        for (j, v) in row.iter_mut().enumerate() {
            *v = (*v - self.means[j]) / self.stds[j];
        }
    }
}

/// Convert column-major features to row-major samples.
pub fn to_row_major(x: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n_rows = x.first().map_or(0, |c| c.len());
    (0..n_rows)
        .map(|i| x.iter().map(|col| col[i]).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizer_zero_mean_unit_std() {
        let x = vec![vec![1.0, 2.0, 3.0, 4.0], vec![10.0, 10.0, 10.0, 10.0]];
        let s = Standardizer::fit(&x);
        let t = s.transform(&x);
        let m0: f64 = t[0].iter().sum::<f64>() / 4.0;
        assert!(m0.abs() < 1e-12);
        let v0: f64 = t[0].iter().map(|v| v * v).sum::<f64>() / 4.0;
        assert!((v0 - 1.0).abs() < 1e-9);
        // Constant column maps to zeros, not NaN.
        assert!(t[1].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn transform_row_matches_transform() {
        let x = vec![vec![1.0, 3.0], vec![2.0, 6.0]];
        let s = Standardizer::fit(&x);
        let t = s.transform(&x);
        let mut row = vec![1.0, 2.0];
        s.transform_row(&mut row);
        assert!((row[0] - t[0][0]).abs() < 1e-12);
        assert!((row[1] - t[1][0]).abs() < 1e-12);
    }

    #[test]
    fn row_major_conversion() {
        let x = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let rows = to_row_major(&x);
        assert_eq!(rows, vec![vec![1.0, 3.0], vec![2.0, 4.0]]);
    }

    #[test]
    fn empty_input_is_safe() {
        let x: Vec<Vec<f64>> = vec![];
        let s = Standardizer::fit(&x);
        assert_eq!(s.n_features(), 0);
        assert!(to_row_major(&x).is_empty());
    }
}
