//! Evaluation metrics.
//!
//! The paper evaluates classification with the **F1-score** and regression
//! with **1 − relative absolute error (1-rae)**:
//!
//! ```text
//! 1-rae = 1 − Σ|ŷ − y| / Σ|ȳ − y|
//! ```
//!
//! where `ȳ` is the mean of the true targets. We additionally provide
//! accuracy, precision and recall (used by the FPE model's objective,
//! Eq. 5–6 of the paper).

use crate::error::{LearnError, Result};

/// Confusion counts for one class in a one-vs-rest view.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BinaryCounts {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
    /// True negatives.
    pub tn: usize,
}

impl BinaryCounts {
    /// Precision = TP / (TP + FP); 0 when the denominator is 0.
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// Recall = TP / (TP + FN); 0 when the denominator is 0.
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// F1 = harmonic mean of precision and recall; 0 when both are 0.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

fn check_lengths(a: usize, b: usize) -> Result<()> {
    if a != b {
        return Err(LearnError::InvalidParam(format!(
            "prediction/truth length mismatch: {a} vs {b}"
        )));
    }
    if a == 0 {
        return Err(LearnError::EmptyTrainingSet(
            "cannot score empty predictions".into(),
        ));
    }
    Ok(())
}

/// Fraction of exactly matching class predictions.
pub fn accuracy(y_true: &[usize], y_pred: &[usize]) -> Result<f64> {
    check_lengths(y_true.len(), y_pred.len())?;
    let hits = y_true.iter().zip(y_pred).filter(|(t, p)| t == p).count();
    Ok(hits as f64 / y_true.len() as f64)
}

/// One-vs-rest confusion counts for class `c`.
pub fn counts_for_class(y_true: &[usize], y_pred: &[usize], c: usize) -> BinaryCounts {
    let mut k = BinaryCounts::default();
    for (&t, &p) in y_true.iter().zip(y_pred) {
        match (t == c, p == c) {
            (true, true) => k.tp += 1,
            (false, true) => k.fp += 1,
            (true, false) => k.fn_ += 1,
            (false, false) => k.tn += 1,
        }
    }
    k
}

/// Support-weighted F1 across all classes present in `y_true` (the
/// scikit-learn `average="weighted"` convention, matching the multi-class
/// datasets in the paper's tables; for binary problems this is close to the
/// positive-class F1 when classes are balanced).
pub fn f1_score(y_true: &[usize], y_pred: &[usize], n_classes: usize) -> Result<f64> {
    check_lengths(y_true.len(), y_pred.len())?;
    let n = y_true.len() as f64;
    let mut weighted = 0.0;
    for c in 0..n_classes.max(1) {
        let support = y_true.iter().filter(|&&t| t == c).count();
        if support == 0 {
            continue;
        }
        weighted += (support as f64 / n) * counts_for_class(y_true, y_pred, c).f1();
    }
    Ok(weighted)
}

/// Macro-averaged precision over classes with non-zero support.
pub fn precision_macro(y_true: &[usize], y_pred: &[usize], n_classes: usize) -> Result<f64> {
    check_lengths(y_true.len(), y_pred.len())?;
    average_over_classes(y_true, y_pred, n_classes, |k| k.precision())
}

/// Macro-averaged recall over classes with non-zero support.
pub fn recall_macro(y_true: &[usize], y_pred: &[usize], n_classes: usize) -> Result<f64> {
    check_lengths(y_true.len(), y_pred.len())?;
    average_over_classes(y_true, y_pred, n_classes, |k| k.recall())
}

fn average_over_classes(
    y_true: &[usize],
    y_pred: &[usize],
    n_classes: usize,
    f: impl Fn(&BinaryCounts) -> f64,
) -> Result<f64> {
    let mut sum = 0.0;
    let mut seen = 0usize;
    for c in 0..n_classes.max(1) {
        if !y_true.contains(&c) {
            continue;
        }
        sum += f(&counts_for_class(y_true, y_pred, c));
        seen += 1;
    }
    if seen == 0 {
        return Err(LearnError::EmptyTrainingSet(
            "no classes with support".into(),
        ));
    }
    Ok(sum / seen as f64)
}

/// Binary precision/recall for the positive class 1 — the FPE model's
/// optimisation target (paper Eq. 5).
pub fn binary_precision_recall(y_true: &[usize], y_pred: &[usize]) -> Result<(f64, f64)> {
    check_lengths(y_true.len(), y_pred.len())?;
    let k = counts_for_class(y_true, y_pred, 1);
    Ok((k.precision(), k.recall()))
}

/// 1 − relative absolute error. 1.0 is a perfect fit; predicting the mean
/// scores 0; worse-than-mean predictions go negative. When the true targets
/// are constant, returns 1.0 for exact predictions and 0.0 otherwise.
pub fn one_minus_rae(y_true: &[f64], y_pred: &[f64]) -> Result<f64> {
    check_lengths(y_true.len(), y_pred.len())?;
    let mean = y_true.iter().sum::<f64>() / y_true.len() as f64;
    let denom: f64 = y_true.iter().map(|y| (y - mean).abs()).sum();
    let num: f64 = y_true.iter().zip(y_pred).map(|(y, p)| (p - y).abs()).sum();
    if denom <= f64::EPSILON {
        return Ok(if num <= f64::EPSILON { 1.0 } else { 0.0 });
    }
    Ok(1.0 - num / denom)
}

/// Mean squared error.
pub fn mse(y_true: &[f64], y_pred: &[f64]) -> Result<f64> {
    check_lengths(y_true.len(), y_pred.len())?;
    Ok(y_true
        .iter()
        .zip(y_pred)
        .map(|(y, p)| (p - y) * (p - y))
        .sum::<f64>()
        / y_true.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[0, 1, 1, 0], &[0, 1, 0, 0]).unwrap(), 0.75);
        assert!(accuracy(&[], &[]).is_err());
        assert!(accuracy(&[0], &[0, 1]).is_err());
    }

    #[test]
    fn perfect_f1_is_one() {
        let y = [0, 1, 2, 1, 0];
        assert!((f1_score(&y, &y, 3).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn f1_harmonic_mean_identity() {
        // One-vs-rest counts chosen by hand: class 1 has p = 2/3, r = 2/4.
        let y_true = [1, 1, 1, 1, 0, 0, 0];
        let y_pred = [1, 1, 0, 0, 1, 0, 0];
        let k = counts_for_class(&y_true, &y_pred, 1);
        assert_eq!((k.tp, k.fp, k.fn_), (2, 1, 2));
        let p = k.precision();
        let r = k.recall();
        assert!((k.f1() - 2.0 * p * r / (p + r)).abs() < 1e-12);
    }

    #[test]
    fn weighted_f1_reflects_support() {
        // Class 0 (support 3) is perfect; class 1 (support 1) is missed.
        let y_true = [0, 0, 0, 1];
        let y_pred = [0, 0, 0, 0];
        let f1 = f1_score(&y_true, &y_pred, 2).unwrap();
        // class 0: p = 3/4, r = 1 → f1 = 6/7, weight 3/4; class 1: f1 = 0.
        assert!((f1 - 0.75 * (6.0 / 7.0)).abs() < 1e-12);
    }

    #[test]
    fn all_wrong_f1_is_zero() {
        assert_eq!(f1_score(&[0, 0], &[1, 1], 2).unwrap(), 0.0);
    }

    #[test]
    fn binary_precision_recall_matches_definition() {
        let y_true = [1, 1, 0, 0, 1];
        let y_pred = [1, 0, 1, 0, 1];
        let (p, r) = binary_precision_recall(&y_true, &y_pred).unwrap();
        assert!((p - 2.0 / 3.0).abs() < 1e-12);
        assert!((r - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn macro_precision_recall() {
        let y_true = [0, 0, 1, 1];
        let y_pred = [0, 1, 1, 1];
        // class 0: p = 1, r = 0.5; class 1: p = 2/3, r = 1.
        assert!(
            (precision_macro(&y_true, &y_pred, 2).unwrap() - (1.0 + 2.0 / 3.0) / 2.0).abs() < 1e-12
        );
        assert!((recall_macro(&y_true, &y_pred, 2).unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn one_minus_rae_perfect_and_mean() {
        let y = [1.0, 2.0, 3.0, 4.0];
        assert!((one_minus_rae(&y, &y).unwrap() - 1.0).abs() < 1e-12);
        let mean_pred = [2.5; 4];
        assert!(one_minus_rae(&y, &mean_pred).unwrap().abs() < 1e-12);
    }

    #[test]
    fn one_minus_rae_worse_than_mean_is_negative() {
        let y = [1.0, 2.0, 3.0];
        let bad = [30.0, -10.0, 99.0];
        assert!(one_minus_rae(&y, &bad).unwrap() < 0.0);
    }

    #[test]
    fn one_minus_rae_constant_targets() {
        let y = [5.0, 5.0];
        assert_eq!(one_minus_rae(&y, &[5.0, 5.0]).unwrap(), 1.0);
        assert_eq!(one_minus_rae(&y, &[4.0, 5.0]).unwrap(), 0.0);
    }

    #[test]
    fn mse_basic() {
        assert!((mse(&[1.0, 2.0], &[2.0, 0.0]).unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn empty_class_skipped_in_weighted_f1() {
        // n_classes = 3 but class 2 never appears in y_true.
        let y_true = [0, 1];
        let y_pred = [0, 2];
        let f1 = f1_score(&y_true, &y_pred, 3).unwrap();
        assert!((f1 - 0.5).abs() < 1e-12); // class 0 perfect (w=0.5), class 1 zero
    }
}
