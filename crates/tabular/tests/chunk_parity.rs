//! Property-based parity suite for the out-of-core chunk layer
//! (DESIGN.md §14): whatever values go into a chunk must come back out
//! bit-for-bit — through the in-RAM encodings, through the `.eafc` byte
//! format, through budget-driven spill/evict cycles — and anything
//! computed *on* chunks (histogram binning) must equal the same
//! computation on the flat column.
//!
//! All comparisons are on `f64::to_bits`, so NaN payloads and signed
//! zeros are part of the contract, not an exception to it.

use std::sync::Arc;

use learners::BinnedColumn;
use proptest::prelude::*;
use tabular::{
    ChunkEncoding, ChunkOptions, ChunkedFrame, Column, DataFrame, FrameBudget, InMemoryStore,
    Label, MmapStore,
};

/// Raw continuous material every property draws from.
fn raw_values(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e9f64..1e9, 1..max_len)
}

/// Shape raw draws into one of three input classes:
/// - `0` — low cardinality (≤ `dict_size` distinct values, repeated):
///   forces the Dict8/Dict16 encodings;
/// - `1` — high-cardinality continuous: drives the F64 fallback;
/// - `2` — adversarial bit patterns (NaN, infinities, signed zeros,
///   subnormals): the encoder must treat these as ordinary 64-bit
///   payloads.
fn shape(raw: &[f64], kind: usize, dict_size: usize) -> Vec<f64> {
    match kind {
        0 => {
            let d = dict_size.min(raw.len());
            raw.iter().enumerate().map(|(i, _)| raw[i % d]).collect()
        }
        1 => raw.to_vec(),
        _ => raw
            .iter()
            .enumerate()
            .map(|(i, &v)| match (i + v.to_bits() as usize) % 7 {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                3 => 0.0,
                4 => -0.0,
                5 => f64::MIN_POSITIVE / 2.0, // subnormal
                _ => v,
            })
            .collect(),
    }
}

fn bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// decode_into / value_at / fold_values all reproduce the input
    /// bit-for-bit, whichever encoding the chunk picked.
    #[test]
    fn encode_decode_round_trips_bitwise(
        raw in raw_values(600),
        kind in 0usize..3,
        dict_size in 1usize..24,
    ) {
        let values = shape(&raw, kind, dict_size);
        let enc = ChunkEncoding::encode(&values);
        prop_assert_eq!(enc.len(), values.len());

        let mut decoded = Vec::new();
        enc.decode_into(&mut decoded);
        prop_assert_eq!(bits(&decoded), bits(&values), "decode_into mismatch");

        for (i, v) in values.iter().enumerate() {
            prop_assert_eq!(
                enc.value_at(i).to_bits(),
                v.to_bits(),
                "value_at({}) mismatch", i
            );
        }

        let folded = enc.fold_values(Vec::new(), |mut acc, v| {
            acc.push(v.to_bits());
            acc
        });
        prop_assert_eq!(folded, bits(&values), "fold_values mismatch");
    }

    /// The `.eafc` payload serialization is lossless: to_bytes →
    /// from_bytes → decode equals the original values. (The encodings
    /// themselves can't be compared with `==` — NaN dictionary entries
    /// defeat PartialEq — so equality is asserted on decoded bits.)
    #[test]
    fn byte_format_round_trips_bitwise(
        raw in raw_values(600),
        kind in 0usize..3,
        dict_size in 1usize..24,
    ) {
        let values = shape(&raw, kind, dict_size);
        let enc = ChunkEncoding::encode(&values);
        let restored = ChunkEncoding::from_bytes(&enc.to_bytes()).unwrap();
        prop_assert_eq!(restored.len(), enc.len());
        let mut a = Vec::new();
        let mut b = Vec::new();
        enc.decode_into(&mut a);
        restored.decode_into(&mut b);
        prop_assert_eq!(bits(&a), bits(&b));
        // Re-encoding the decoded values is deterministic down to the wire.
        prop_assert_eq!(ChunkEncoding::encode(&b).to_bytes(), enc.to_bytes());
    }

    /// Low-cardinality inputs actually take a dictionary encoding, the
    /// dictionary covers exactly the distinct bit patterns, and it beats
    /// raw f64 storage.
    #[test]
    fn dictionary_encoding_kicks_in(
        dict_vals in prop::collection::vec(-50.0f64..50.0, 1..24),
        picks in prop::collection::vec(0usize..100_000, 64..600),
    ) {
        let values: Vec<f64> = picks
            .iter()
            .map(|p| dict_vals[p % dict_vals.len()])
            .collect();
        let enc = ChunkEncoding::encode(&values);
        let dict = enc.dict();
        prop_assert!(dict.is_some(), "small-dict input fell back to F64");
        let mut distinct: Vec<u64> = bits(&values);
        distinct.sort_unstable();
        distinct.dedup();
        let mut dict_bits = bits(dict.unwrap());
        dict_bits.sort_unstable();
        prop_assert_eq!(dict_bits, distinct, "dict != distinct value set");
        prop_assert!(
            enc.heap_bytes() < values.len() * 8,
            "dictionary form didn't compress: {} >= {}",
            enc.heap_bytes(),
            values.len() * 8
        );
    }

    /// ChunkedFrame round trip: from_dataframe → to_dataframe is
    /// bit-identical for any chunk size, including chunk_rows that don't
    /// divide the row count.
    #[test]
    fn frame_round_trips_across_chunk_sizes(
        raw in raw_values(400),
        kind in 0usize..3,
        dict_size in 1usize..24,
        chunk_rows in 1usize..97,
    ) {
        let values = shape(&raw, kind, dict_size);
        let n = values.len();
        let df = DataFrame::new(
            "prop-roundtrip",
            vec![
                Column::new("x0", values.clone()),
                Column::new("x1", values.iter().rev().copied().collect()),
            ],
            Label::Reg(vec![0.0; n]),
        ).unwrap();
        let cf = ChunkedFrame::from_dataframe(
            &df,
            ChunkOptions::default().with_chunk_rows(chunk_rows),
            Box::new(InMemoryStore::new()),
        ).unwrap();
        prop_assert_eq!(cf.n_chunks(), n.div_ceil(chunk_rows));
        let back = cf.to_dataframe().unwrap();
        for (orig, got) in df.columns().iter().zip(back.columns()) {
            prop_assert_eq!(&orig.name, &got.name);
            prop_assert_eq!(bits(&orig.values), bits(&got.values));
        }
    }

    /// A budget small enough to force spill + eviction churn must not
    /// change a single bit of any materialized column — resident-set
    /// management is invisible to readers.
    #[test]
    fn tight_budget_spill_is_bitwise_invisible(
        raw in raw_values(300),
        kind in 0usize..3,
        dict_size in 1usize..24,
        chunk_rows in 1usize..49,
    ) {
        let values = shape(&raw, kind, dict_size);
        let df = DataFrame::new(
            "prop-spill",
            vec![Column::new("x0", values.clone())],
            Label::Reg(vec![0.0; values.len()]),
        ).unwrap();
        let cf = ChunkedFrame::from_dataframe(
            &df,
            ChunkOptions::default()
                .with_chunk_rows(chunk_rows)
                .with_budget(FrameBudget::from_bytes(64)),
            Box::new(InMemoryStore::new()),
        ).unwrap();
        let mut out = Vec::new();
        cf.materialize_column(0, &mut out).unwrap();
        prop_assert_eq!(bits(&out), bits(&values));
        // Random access after the full scan still sees the same bits.
        for i in (0..values.len()).step_by(7) {
            prop_assert_eq!(
                cf.value_at(0, i).unwrap().to_bits(),
                values[i].to_bits(),
                "value_at({}) after spill churn", i
            );
        }
    }

    /// Histogram binning over chunk encodings equals binning the flat
    /// column: same bin count, same per-row codes. This is the property
    /// the chunk-at-a-time learners path rests on (DESIGN.md §14).
    #[test]
    fn chunked_histogram_matches_flat(
        raw in raw_values(500),
        kind in 0usize..2, // finite inputs only: dict and dense
        dict_size in 1usize..24,
        chunk_rows in 1usize..97,
        max_bins in 2usize..65,
    ) {
        let values = shape(&raw, kind, dict_size);
        let flat = BinnedColumn::build(&values, max_bins);
        let chunks: Vec<Arc<ChunkEncoding>> = values
            .chunks(chunk_rows)
            .map(|c| Arc::new(ChunkEncoding::encode(c)))
            .collect();
        let chunked = BinnedColumn::build_chunked(&chunks, max_bins);
        prop_assert_eq!(flat.n_bins(), chunked.n_bins(), "bin counts differ");
        for r in 0..values.len() {
            prop_assert_eq!(
                flat.codes().get(r),
                chunked.codes().get(r),
                "bin code mismatch at row {}", r
            );
        }
    }
}

/// The mmap-backed store serves the same bits as the in-memory store —
/// a single deterministic (non-proptest) case so the on-disk `.eafc`
/// pipeline is always exercised.
#[test]
fn mmap_store_round_trip_matches_memory_store() {
    let n = 10_000usize;
    let values: Vec<f64> = (0..n)
        .map(|i| match i % 7 {
            0 => f64::NAN,
            1 => -0.0,
            2 => (i % 13) as f64,
            _ => (i as f64 * 0.37).sin() * 1e6,
        })
        .collect();
    let df = DataFrame::new(
        "mmap-roundtrip",
        vec![Column::new("x0", values.clone())],
        Label::Reg(vec![0.0; n]),
    )
    .unwrap();
    let opts = ChunkOptions::default()
        .with_chunk_rows(512)
        .with_budget(FrameBudget::from_bytes(4096));
    let dir = std::env::temp_dir().join(format!("eafc-parity-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("col.eafc");

    let mem = ChunkedFrame::from_dataframe(&df, opts, Box::new(InMemoryStore::new())).unwrap();
    let mapped =
        ChunkedFrame::from_dataframe(&df, opts, Box::new(MmapStore::create(&path).unwrap()))
            .unwrap();

    let (mut a, mut b) = (Vec::new(), Vec::new());
    mem.materialize_column(0, &mut a).unwrap();
    mapped.materialize_column(0, &mut b).unwrap();
    assert_eq!(bits(&a), bits(&b), "mmap vs memory store bits");
    assert_eq!(bits(&a), bits(&values), "store round trip vs original");
    assert!(
        mapped.stats().chunks_spilled > 0,
        "the tight budget must actually exercise the spill path"
    );
    drop(mapped);
    let _ = std::fs::remove_dir_all(&dir);
}
