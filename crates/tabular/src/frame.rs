//! The central `DataFrame` type: a column-major table of numeric features
//! plus a classification or regression label.

use crate::column::Column;
use crate::error::{Result, TabularError};
use serde::{Deserialize, Serialize};

/// Downstream task type for a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Task {
    /// Multi-class classification (labels are class indices).
    Classification,
    /// Scalar regression.
    Regression,
}

impl Task {
    /// Short code used in tables ("C" or "R"), matching the paper's notation.
    pub fn code(self) -> &'static str {
        match self {
            Task::Classification => "C",
            Task::Regression => "R",
        }
    }
}

/// The label vector of a dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Label {
    /// Class indices in `0..n_classes`.
    Class {
        /// Per-row class index.
        y: Vec<usize>,
        /// Total number of classes (class indices are `< n_classes`).
        n_classes: usize,
    },
    /// Real-valued regression targets.
    Reg(Vec<f64>),
}

impl Label {
    /// Number of labelled rows.
    pub fn len(&self) -> usize {
        match self {
            Label::Class { y, .. } => y.len(),
            Label::Reg(y) => y.len(),
        }
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The task this label implies.
    pub fn task(&self) -> Task {
        match self {
            Label::Class { .. } => Task::Classification,
            Label::Reg(_) => Task::Regression,
        }
    }

    /// Gather the label at the given row indices.
    pub fn take(&self, indices: &[usize]) -> Label {
        match self {
            Label::Class { y, n_classes } => Label::Class {
                y: indices.iter().map(|&i| y[i]).collect(),
                n_classes: *n_classes,
            },
            Label::Reg(y) => Label::Reg(indices.iter().map(|&i| y[i]).collect()),
        }
    }

    /// Class labels, if classification.
    pub fn classes(&self) -> Option<&[usize]> {
        match self {
            Label::Class { y, .. } => Some(y),
            Label::Reg(_) => None,
        }
    }

    /// Regression targets, if regression.
    pub fn targets(&self) -> Option<&[f64]> {
        match self {
            Label::Reg(y) => Some(y),
            Label::Class { .. } => None,
        }
    }

    /// Number of classes (1 for regression, for uniformity).
    pub fn n_classes(&self) -> usize {
        match self {
            Label::Class { n_classes, .. } => *n_classes,
            Label::Reg(_) => 1,
        }
    }
}

/// A column-major data frame: `N` feature columns of equal length plus a
/// label vector of the same length.
///
/// This is the dataset representation `D⟨F, y⟩` from the paper's problem
/// formulation: features `F = {f[1], …, f[N]}` with label `y`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataFrame {
    /// Dataset name (used in experiment tables).
    pub name: String,
    columns: Vec<Column>,
    label: Label,
}

impl DataFrame {
    /// Build a frame, validating that all columns and the label agree on
    /// row count and that classification class indices are in range.
    pub fn new(name: impl Into<String>, columns: Vec<Column>, label: Label) -> Result<Self> {
        let n_rows = label.len();
        for c in &columns {
            if c.len() != n_rows {
                return Err(TabularError::LengthMismatch {
                    what: format!("column `{}` vs label", c.name),
                    expected: n_rows,
                    got: c.len(),
                });
            }
        }
        if let Label::Class { y, n_classes } = &label {
            if let Some(&bad) = y.iter().find(|&&c| c >= *n_classes) {
                return Err(TabularError::InvalidParam(format!(
                    "class index {bad} out of range (n_classes = {n_classes})"
                )));
            }
        }
        Ok(Self {
            name: name.into(),
            columns,
            label,
        })
    }

    /// Number of rows (samples). `M` in the paper's notation.
    pub fn n_rows(&self) -> usize {
        self.label.len()
    }

    /// Number of feature columns. `N` in the paper's notation.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// The downstream task type.
    pub fn task(&self) -> Task {
        self.label.task()
    }

    /// Borrow all feature columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Borrow one feature column by index.
    pub fn column(&self, idx: usize) -> Result<&Column> {
        self.columns
            .get(idx)
            .ok_or_else(|| TabularError::NoSuchColumn(format!("#{idx}")))
    }

    /// Borrow one feature column by name.
    pub fn column_by_name(&self, name: &str) -> Result<&Column> {
        self.columns
            .iter()
            .find(|c| c.name == name)
            .ok_or_else(|| TabularError::NoSuchColumn(name.to_string()))
    }

    /// Borrow the label.
    pub fn label(&self) -> &Label {
        &self.label
    }

    /// A single row as a dense feature vector.
    pub fn row(&self, i: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n_cols());
        self.row_into(i, &mut out);
        out
    }

    /// Write row `i` into `out` (cleared first). Row-scanning hot loops use
    /// this with one reused buffer instead of allocating per call via
    /// [`row`](Self::row).
    pub fn row_into(&self, i: usize, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.columns.iter().map(|c| c.values[i]));
    }

    /// Append a feature column; must match the frame's row count.
    pub fn push_column(&mut self, column: Column) -> Result<()> {
        if column.len() != self.n_rows() {
            return Err(TabularError::LengthMismatch {
                what: format!("new column `{}`", column.name),
                expected: self.n_rows(),
                got: column.len(),
            });
        }
        self.columns.push(column);
        Ok(())
    }

    /// Remove and return the column at `idx`.
    pub fn remove_column(&mut self, idx: usize) -> Result<Column> {
        if idx >= self.columns.len() {
            return Err(TabularError::NoSuchColumn(format!("#{idx}")));
        }
        Ok(self.columns.remove(idx))
    }

    /// A new frame containing all columns except `idx` — the "residual
    /// dataset" `D_j^i` used by FPE's leave-one-feature-out labelling.
    pub fn drop_column(&self, idx: usize) -> Result<DataFrame> {
        if idx >= self.columns.len() {
            return Err(TabularError::NoSuchColumn(format!("#{idx}")));
        }
        let columns = self
            .columns
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != idx)
            .map(|(_, c)| c.clone())
            .collect();
        DataFrame::new(self.name.clone(), columns, self.label.clone())
    }

    /// A new frame keeping only the columns at the given indices (in order).
    pub fn select_columns(&self, indices: &[usize]) -> Result<DataFrame> {
        let mut columns = Vec::with_capacity(indices.len());
        for &i in indices {
            columns.push(self.column(i)?.clone());
        }
        DataFrame::new(self.name.clone(), columns, self.label.clone())
    }

    /// A new frame containing only the given rows (indices may repeat, so
    /// this also serves bootstrap resampling).
    pub fn take_rows(&self, indices: &[usize]) -> Result<DataFrame> {
        if let Some(&bad) = indices.iter().find(|&&i| i >= self.n_rows()) {
            return Err(TabularError::InvalidParam(format!(
                "row index {bad} out of range (n_rows = {})",
                self.n_rows()
            )));
        }
        let columns = self.columns.iter().map(|c| c.take(indices)).collect();
        Ok(DataFrame {
            name: self.name.clone(),
            columns,
            label: self.label.take(indices),
        })
    }

    /// Replace every non-finite feature value with 0.0; returns the number
    /// of replaced entries. Generated features can produce NaN/Inf (log of
    /// a negative, division by ~0), and learners require finite input.
    pub fn sanitize(&mut self) -> usize {
        self.columns.iter_mut().map(|c| c.sanitize(0.0)).sum()
    }

    /// Row-major copy of the feature matrix (one `Vec<f64>` per row).
    /// Learners that scan samples (trees, NB) use this layout.
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        (0..self.n_rows()).map(|i| self.row(i)).collect()
    }

    /// Dataset shape in the paper's "Samples\Features" table notation.
    pub fn shape_str(&self) -> String {
        format!("{}\\{}", self.n_rows(), self.n_cols())
    }

    /// Concatenate this frame's columns with extra generated columns into a
    /// new frame sharing the same label.
    pub fn with_extra_columns(&self, extra: &[Column]) -> Result<DataFrame> {
        let mut columns = self.columns.clone();
        for c in extra {
            if c.len() != self.n_rows() {
                return Err(TabularError::LengthMismatch {
                    what: format!("extra column `{}`", c.name),
                    expected: self.n_rows(),
                    got: c.len(),
                });
            }
            columns.push(c.clone());
        }
        DataFrame::new(self.name.clone(), columns, self.label.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> DataFrame {
        DataFrame::new(
            "t",
            vec![
                Column::new("a", vec![1.0, 2.0, 3.0, 4.0]),
                Column::new("b", vec![10.0, 20.0, 30.0, 40.0]),
            ],
            Label::Class {
                y: vec![0, 1, 0, 1],
                n_classes: 2,
            },
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_lengths() {
        let err = DataFrame::new(
            "bad",
            vec![Column::new("a", vec![1.0])],
            Label::Reg(vec![1.0, 2.0]),
        )
        .unwrap_err();
        assert!(matches!(err, TabularError::LengthMismatch { .. }));
    }

    #[test]
    fn construction_validates_class_range() {
        let err = DataFrame::new(
            "bad",
            vec![Column::new("a", vec![1.0])],
            Label::Class {
                y: vec![5],
                n_classes: 2,
            },
        )
        .unwrap_err();
        assert!(matches!(err, TabularError::InvalidParam(_)));
    }

    #[test]
    fn shape_and_access() {
        let f = frame();
        assert_eq!(f.n_rows(), 4);
        assert_eq!(f.n_cols(), 2);
        assert_eq!(f.task(), Task::Classification);
        assert_eq!(f.row(1), vec![2.0, 20.0]);
        assert_eq!(f.column_by_name("b").unwrap().values[0], 10.0);
        assert!(f.column_by_name("zzz").is_err());
        assert_eq!(f.shape_str(), "4\\2");
    }

    #[test]
    fn drop_column_builds_residual() {
        let f = frame();
        let r = f.drop_column(0).unwrap();
        assert_eq!(r.n_cols(), 1);
        assert_eq!(r.columns()[0].name, "b");
        assert_eq!(r.n_rows(), 4);
        assert!(f.drop_column(7).is_err());
    }

    #[test]
    fn take_rows_supports_bootstrap() {
        let f = frame();
        let b = f.take_rows(&[0, 0, 3]).unwrap();
        assert_eq!(b.n_rows(), 3);
        assert_eq!(b.column(0).unwrap().values, vec![1.0, 1.0, 4.0]);
        assert_eq!(b.label().classes().unwrap(), &[0, 0, 1]);
        assert!(f.take_rows(&[9]).is_err());
    }

    #[test]
    fn push_and_remove_column() {
        let mut f = frame();
        f.push_column(Column::new("c", vec![0.0; 4])).unwrap();
        assert_eq!(f.n_cols(), 3);
        assert!(f.push_column(Column::new("d", vec![0.0; 3])).is_err());
        let removed = f.remove_column(2).unwrap();
        assert_eq!(removed.name, "c");
        assert_eq!(f.n_cols(), 2);
    }

    #[test]
    fn sanitize_fixes_nonfinite() {
        let mut f = DataFrame::new(
            "t",
            vec![Column::new("a", vec![f64::NAN, 1.0, f64::NEG_INFINITY])],
            Label::Reg(vec![0.0, 1.0, 2.0]),
        )
        .unwrap();
        assert_eq!(f.sanitize(), 2);
        assert!(f.columns()[0].is_finite());
    }

    #[test]
    fn select_columns_reorders() {
        let f = frame();
        let s = f.select_columns(&[1, 0]).unwrap();
        assert_eq!(s.columns()[0].name, "b");
        assert_eq!(s.columns()[1].name, "a");
    }

    #[test]
    fn with_extra_columns_appends() {
        let f = frame();
        let g = f
            .with_extra_columns(&[Column::new("x", vec![5.0; 4])])
            .unwrap();
        assert_eq!(g.n_cols(), 3);
        assert!(f
            .with_extra_columns(&[Column::new("x", vec![5.0; 2])])
            .is_err());
    }

    #[test]
    fn label_take_regression() {
        let l = Label::Reg(vec![1.0, 2.0, 3.0]);
        assert_eq!(l.take(&[2, 1]).targets().unwrap(), &[3.0, 2.0]);
        assert_eq!(l.task(), Task::Regression);
        assert_eq!(l.n_classes(), 1);
    }
}
