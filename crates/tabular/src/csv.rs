//! Minimal CSV serialisation for `DataFrame`.
//!
//! Format: a header row with feature names followed by a final label column
//! named `__label__` (class index for classification, real value for
//! regression). This is sufficient for persisting synthetic datasets and for
//! loading user-provided numeric tables; it is not a general CSV parser
//! (no quoting — feature names must not contain commas).

use crate::column::Column;
use crate::error::{Result, TabularError};
use crate::frame::{DataFrame, Label, Task};
use std::io::{BufRead, BufReader, Read, Write};

/// Reserved header name for the label column.
pub const LABEL_COLUMN: &str = "__label__";

/// Write a frame as CSV to any writer.
pub fn write_csv<W: Write>(frame: &DataFrame, w: &mut W) -> Result<()> {
    let mut header: Vec<&str> = frame.columns().iter().map(|c| c.name.as_str()).collect();
    header.push(LABEL_COLUMN);
    writeln!(w, "{}", header.join(","))?;
    for i in 0..frame.n_rows() {
        let mut fields: Vec<String> = frame
            .columns()
            .iter()
            .map(|c| format_f64(c.values[i]))
            .collect();
        match frame.label() {
            Label::Class { y, .. } => fields.push(y[i].to_string()),
            Label::Reg(y) => fields.push(format_f64(y[i])),
        }
        writeln!(w, "{}", fields.join(","))?;
    }
    Ok(())
}

/// Read a frame from CSV produced by [`write_csv`] (or any comma-separated
/// numeric table whose last column is the label).
pub fn read_csv<R: Read>(name: &str, task: Task, r: R) -> Result<DataFrame> {
    let reader = BufReader::new(r);
    let mut lines = reader.lines();
    let header_line = lines
        .next()
        .ok_or_else(|| TabularError::Empty("csv has no header".into()))??;
    let header: Vec<String> = header_line
        .split(',')
        .map(|s| s.trim().to_string())
        .collect();
    if header.len() < 2 {
        return Err(TabularError::Csv {
            line: 1,
            msg: "need at least one feature column and a label column".into(),
        });
    }
    let n_features = header.len() - 1;
    let mut feature_rows: Vec<Vec<f64>> = vec![Vec::new(); n_features];
    let mut class_labels: Vec<usize> = Vec::new();
    let mut reg_labels: Vec<f64> = Vec::new();

    for (line_no, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != header.len() {
            return Err(TabularError::Csv {
                line: line_no + 2,
                msg: format!("expected {} fields, got {}", header.len(), fields.len()),
            });
        }
        for (j, row) in feature_rows.iter_mut().enumerate() {
            let v: f64 = fields[j].trim().parse().map_err(|_| TabularError::Csv {
                line: line_no + 2,
                msg: format!("bad float `{}` in column `{}`", fields[j], header[j]),
            })?;
            row.push(v);
        }
        let last = fields[n_features].trim();
        match task {
            Task::Classification => {
                let c: usize = last.parse().map_err(|_| TabularError::Csv {
                    line: line_no + 2,
                    msg: format!("bad class label `{last}`"),
                })?;
                class_labels.push(c);
            }
            Task::Regression => {
                let v: f64 = last.parse().map_err(|_| TabularError::Csv {
                    line: line_no + 2,
                    msg: format!("bad regression target `{last}`"),
                })?;
                reg_labels.push(v);
            }
        }
    }

    let columns: Vec<Column> = header[..n_features]
        .iter()
        .zip(feature_rows)
        .map(|(name, values)| Column::new(name.clone(), values))
        .collect();

    let label = match task {
        Task::Classification => {
            let n_classes = class_labels.iter().max().map_or(0, |&m| m + 1);
            Label::Class {
                y: class_labels,
                n_classes: n_classes.max(1),
            }
        }
        Task::Regression => Label::Reg(reg_labels),
    };
    DataFrame::new(name, columns, label)
}

/// Format an f64 compactly but round-trippably.
fn format_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        // 17 significant digits round-trips any f64.
        format!("{v:.17e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> DataFrame {
        DataFrame::new(
            "t",
            vec![
                Column::new("a", vec![1.0, 2.5, -3.125]),
                Column::new("b", vec![0.1, 0.2, 0.3]),
            ],
            Label::Class {
                y: vec![0, 1, 1],
                n_classes: 2,
            },
        )
        .unwrap()
    }

    #[test]
    fn round_trip_classification() {
        let f = frame();
        let mut buf = Vec::new();
        write_csv(&f, &mut buf).unwrap();
        let g = read_csv("t", Task::Classification, &buf[..]).unwrap();
        assert_eq!(g.n_rows(), 3);
        assert_eq!(g.n_cols(), 2);
        assert_eq!(g.label().classes().unwrap(), f.label().classes().unwrap());
        for (ca, cb) in f.columns().iter().zip(g.columns()) {
            assert_eq!(ca.name, cb.name);
            for (x, y) in ca.values.iter().zip(&cb.values) {
                assert!((x - y).abs() < 1e-12, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn round_trip_regression() {
        let f = DataFrame::new(
            "r",
            vec![Column::new("x", vec![1.0, 2.0])],
            Label::Reg(vec![0.123456789012345, -9.0]),
        )
        .unwrap();
        let mut buf = Vec::new();
        write_csv(&f, &mut buf).unwrap();
        let g = read_csv("r", Task::Regression, &buf[..]).unwrap();
        let t = g.label().targets().unwrap();
        assert!((t[0] - 0.123456789012345).abs() < 1e-15);
        assert_eq!(t[1], -9.0);
    }

    #[test]
    fn rejects_ragged_rows() {
        let data = "a,b,__label__\n1,2,0\n1,0\n";
        let err = read_csv("x", Task::Classification, data.as_bytes()).unwrap_err();
        match err {
            TabularError::Csv { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn rejects_bad_float() {
        let data = "a,__label__\nfoo,0\n";
        assert!(matches!(
            read_csv("x", Task::Classification, data.as_bytes()),
            Err(TabularError::Csv { line: 2, .. })
        ));
    }

    #[test]
    fn rejects_empty_input() {
        assert!(read_csv("x", Task::Classification, &b""[..]).is_err());
    }

    #[test]
    fn skips_blank_lines() {
        let data = "a,__label__\n1,0\n\n2,1\n";
        let f = read_csv("x", Task::Classification, data.as_bytes()).unwrap();
        assert_eq!(f.n_rows(), 2);
    }
}
