//! # tabular
//!
//! Column-major tabular data substrate for the E-AFE reproduction:
//!
//! - [`DataFrame`] / [`Column`] / [`Label`] — the dataset representation
//!   `D⟨F, y⟩` from the paper's problem formulation;
//! - [`chunk`] / [`store`] / [`budget`] — the out-of-core layer: compressed
//!   chunked columns ([`ChunkedFrame`]), pluggable chunk persistence
//!   ([`ColumnStore`] with in-memory and mmap-backed `.eafc` backends), and
//!   resident-bytes budgeting with LRU spill/evict ([`FrameBudget`]);
//! - [`split`] — train/test and (stratified) k-fold index generation;
//! - [`sample`] — subsampling and bootstrap utilities;
//! - [`csv`] — simple persistence;
//! - [`synth`] / [`registry`] — deterministic synthetic stand-ins for the
//!   paper's 36 target datasets and the public pre-training corpus, with
//!   planted operator compositions so feature engineering has real signal
//!   to discover (see DESIGN.md §2).

#![warn(missing_docs)]

pub mod budget;
pub mod chunk;
pub mod column;
pub mod csv;
pub mod error;
pub mod frame;
pub mod registry;
pub mod sample;
pub mod split;
pub mod store;
pub mod synth;

pub use budget::{global_frame_stats, FrameBudget, FrameStats};
pub use chunk::{ChunkEncoding, ChunkOptions, ChunkedColumn, ChunkedFrame, DEFAULT_CHUNK_ROWS};
pub use column::Column;
pub use error::{Result, TabularError};
pub use frame::{DataFrame, Label, Task};
pub use registry::{find_dataset, DatasetInfo, TARGET_DATASETS};
pub use split::Split;
pub use store::{ChunkTicket, ColumnStore, InMemoryStore, MmapStore, StoreKind};
pub use synth::SynthSpec;
