//! # tabular
//!
//! Column-major tabular data substrate for the E-AFE reproduction:
//!
//! - [`DataFrame`] / [`Column`] / [`Label`] — the dataset representation
//!   `D⟨F, y⟩` from the paper's problem formulation;
//! - [`split`] — train/test and (stratified) k-fold index generation;
//! - [`sample`] — subsampling and bootstrap utilities;
//! - [`csv`] — simple persistence;
//! - [`synth`] / [`registry`] — deterministic synthetic stand-ins for the
//!   paper's 36 target datasets and the public pre-training corpus, with
//!   planted operator compositions so feature engineering has real signal
//!   to discover (see DESIGN.md §2).

#![warn(missing_docs)]

pub mod column;
pub mod csv;
pub mod error;
pub mod frame;
pub mod registry;
pub mod sample;
pub mod split;
pub mod synth;

pub use column::Column;
pub use error::{Result, TabularError};
pub use frame::{DataFrame, Label, Task};
pub use registry::{find_dataset, DatasetInfo, TARGET_DATASETS};
pub use split::Split;
pub use synth::SynthSpec;
