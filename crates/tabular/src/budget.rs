//! Resident-memory budgeting for chunked frames.
//!
//! A [`FrameBudget`] caps the decoded + encoded bytes a [`ChunkedFrame`](crate::chunk::ChunkedFrame)
//! (see [`crate::chunk`]) may keep resident in RAM. When an insert or a
//! load pushes the frame over budget, the least-recently-used resident
//! chunks are spilled to the frame's [`ColumnStore`](crate::store::ColumnStore)
//! (if not already persisted) and then evicted, so the working set tracks
//! access order rather than dataset size.
//!
//! The module also keeps process-global chunk-traffic counters
//! ([`global_frame_stats`]) so observability surfaces (the serve crate's
//! `/status` page, bench `--metrics` blocks) can report chunk residency and
//! spill/evict traffic without holding a reference to any particular frame.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Cap on the bytes a chunked frame may keep resident in RAM.
///
/// The budget covers the heap bytes of resident [`ChunkEncoding`](crate::chunk::ChunkEncoding)s
/// (dictionaries + codes, or raw `f64` payloads for high-cardinality
/// chunks) — it does not count transient decode scratch owned by callers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameBudget {
    /// Maximum resident bytes; `u64::MAX` means unbounded.
    pub resident_bytes: u64,
}

impl FrameBudget {
    /// No cap: chunks stay resident forever (in-RAM behaviour).
    pub fn unbounded() -> Self {
        FrameBudget {
            resident_bytes: u64::MAX,
        }
    }

    /// A cap of `mib` mebibytes.
    pub fn from_mib(mib: u64) -> Self {
        FrameBudget {
            resident_bytes: mib.saturating_mul(1024 * 1024),
        }
    }

    /// A cap in raw bytes.
    pub fn from_bytes(bytes: u64) -> Self {
        FrameBudget {
            resident_bytes: bytes,
        }
    }

    /// True when this budget never evicts.
    pub fn is_unbounded(&self) -> bool {
        self.resident_bytes == u64::MAX
    }
}

impl Default for FrameBudget {
    fn default() -> Self {
        FrameBudget::unbounded()
    }
}

/// Snapshot of chunk residency and traffic, either for one frame
/// ([`ChunkedFrame::stats`](crate::chunk::ChunkedFrame::stats)) or for the
/// whole process ([`global_frame_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameStats {
    /// Chunks currently resident in RAM.
    pub chunks_resident: u64,
    /// Bytes currently resident in RAM (encoded form).
    pub resident_bytes: u64,
    /// Cumulative chunks written to the backing store by budget pressure.
    pub chunks_spilled: u64,
    /// Cumulative chunks whose RAM copy was dropped by budget pressure.
    pub chunks_evicted: u64,
    /// Cumulative chunks re-read from the backing store after eviction.
    pub chunks_loaded: u64,
    /// Cumulative chunk decodes (codes → `f64` scratch).
    pub chunks_decoded: u64,
}

/// Process-global atomic counters behind [`global_frame_stats`].
#[derive(Debug, Default)]
pub(crate) struct GlobalStats {
    pub(crate) resident: AtomicU64,
    pub(crate) resident_bytes: AtomicU64,
    pub(crate) spilled: AtomicU64,
    pub(crate) evicted: AtomicU64,
    pub(crate) loaded: AtomicU64,
    pub(crate) decoded: AtomicU64,
}

pub(crate) static GLOBAL: GlobalStats = GlobalStats {
    resident: AtomicU64::new(0),
    resident_bytes: AtomicU64::new(0),
    spilled: AtomicU64::new(0),
    evicted: AtomicU64::new(0),
    loaded: AtomicU64::new(0),
    decoded: AtomicU64::new(0),
};

/// Process-wide chunk residency/traffic counters, aggregated over every
/// live [`ChunkedFrame`](crate::chunk::ChunkedFrame)(crate::chunk::ChunkedFrame). Gauges
/// (`chunks_resident`, `resident_bytes`) reflect the current state;
/// the remaining fields are cumulative since process start.
pub fn global_frame_stats() -> FrameStats {
    FrameStats {
        chunks_resident: GLOBAL.resident.load(Ordering::Relaxed),
        resident_bytes: GLOBAL.resident_bytes.load(Ordering::Relaxed),
        chunks_spilled: GLOBAL.spilled.load(Ordering::Relaxed),
        chunks_evicted: GLOBAL.evicted.load(Ordering::Relaxed),
        chunks_loaded: GLOBAL.loaded.load(Ordering::Relaxed),
        chunks_decoded: GLOBAL.decoded.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_constructors() {
        assert!(FrameBudget::unbounded().is_unbounded());
        assert!(FrameBudget::default().is_unbounded());
        assert_eq!(FrameBudget::from_mib(2).resident_bytes, 2 * 1024 * 1024);
        assert!(!FrameBudget::from_mib(2).is_unbounded());
        assert_eq!(FrameBudget::from_bytes(7).resident_bytes, 7);
    }

    #[test]
    fn global_stats_snapshot_is_consistent() {
        let s = global_frame_stats();
        // Monotone counters can only grow between snapshots.
        let t = global_frame_stats();
        assert!(t.chunks_spilled >= s.chunks_spilled);
        assert!(t.chunks_loaded >= s.chunks_loaded);
    }
}
