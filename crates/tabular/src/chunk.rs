//! Compressed chunked columnar storage: the out-of-core counterpart of
//! [`DataFrame`].
//!
//! A [`ChunkedFrame`] stores each column as fixed-size row chunks (default
//! 64Ki rows, [`DEFAULT_CHUNK_ROWS`]). Each chunk is dictionary-compressed
//! when its cardinality allows ([`ChunkEncoding::Dict8`] /
//! [`ChunkEncoding::Dict16`]) and kept as raw `f64` otherwise. Encoding is
//! **lossless at the bit level**: the dictionary is the chunk's exact
//! distinct-value set sorted by `f64::total_cmp` (which is injective over
//! bit patterns, so `-0.0` vs `0.0` and NaN payloads all round-trip), and
//! decode is a dictionary gather. That is what lets chunk-at-a-time
//! execution stay *bitwise identical* to flat in-RAM execution.
//!
//! Residency is governed by a [`FrameBudget`]: when resident encoded bytes
//! exceed the cap, least-recently-used chunks are spilled to the frame's
//! [`ColumnStore`] (once) and evicted from RAM; later accesses transparently
//! reload them. Because spilling writes the exact encoded bytes back out,
//! eviction can never change values — bit-identity is independent of access
//! order, budget size, and backend.
//!
//! This crate is a dependency leaf, so no thread pool lives here: all
//! methods take `&self` with internal locking, and chunk-parallel pipelines
//! are driven from higher layers (learners/eafe/bench) which decode through
//! [`ChunkedFrame::chunk`] handles in fixed chunk-index order.

use crate::budget::{FrameBudget, FrameStats, GLOBAL};
use crate::column::Column;
use crate::error::{Result, TabularError};
use crate::frame::{DataFrame, Label, Task};
use crate::store::{ChunkTicket, ColumnStore, InMemoryStore};
use std::collections::HashSet;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default rows per chunk (64Ki).
pub const DEFAULT_CHUNK_ROWS: usize = 65_536;

/// Maximum distinct values a chunk may have and still be dictionary-coded.
/// Above this the dictionary + u16 codes approach raw `f64` size, so the
/// chunk falls back to [`ChunkEncoding::F64`].
pub const DICT_MAX_DISTINCT: usize = 4096;

fn us_since(start: Instant) -> u64 {
    start.elapsed().as_micros() as u64
}

// ---------------------------------------------------------------------------
// ChunkEncoding
// ---------------------------------------------------------------------------

/// One encoded chunk of a column.
#[derive(Debug, Clone, PartialEq)]
pub enum ChunkEncoding {
    /// ≤ 256 distinct values: dictionary + `u8` codes.
    Dict8 {
        /// Distinct values, sorted by `f64::total_cmp`.
        dict: Vec<f64>,
        /// Per-row indices into `dict`.
        codes: Vec<u8>,
    },
    /// ≤ [`DICT_MAX_DISTINCT`] distinct values: dictionary + `u16` codes.
    Dict16 {
        /// Distinct values, sorted by `f64::total_cmp`.
        dict: Vec<f64>,
        /// Per-row indices into `dict`.
        codes: Vec<u16>,
    },
    /// High-cardinality fallback: raw values.
    F64(Vec<f64>),
}

impl ChunkEncoding {
    /// Encode a chunk of values, choosing the densest lossless layout.
    pub fn encode(values: &[f64]) -> ChunkEncoding {
        let mut bits: HashSet<u64> = HashSet::new();
        for v in values {
            bits.insert(v.to_bits());
            if bits.len() > DICT_MAX_DISTINCT {
                return ChunkEncoding::F64(values.to_vec());
            }
        }
        let code_bytes = if bits.len() <= u8::MAX as usize + 1 {
            1
        } else {
            2
        };
        if bits.len() * 8 + values.len() * code_bytes >= values.len() * 8 {
            // The dictionary would not beat raw f64 (near-unique chunk).
            return ChunkEncoding::F64(values.to_vec());
        }
        let mut dict: Vec<f64> = bits.into_iter().map(f64::from_bits).collect();
        dict.sort_by(|a, b| a.total_cmp(b));
        let code_of = |v: f64| {
            dict.binary_search_by(|p| p.total_cmp(&v))
                .expect("value present in its own dictionary")
        };
        if dict.len() <= u8::MAX as usize + 1 {
            let codes = values.iter().map(|&v| code_of(v) as u8).collect();
            ChunkEncoding::Dict8 { dict, codes }
        } else {
            let codes = values.iter().map(|&v| code_of(v) as u16).collect();
            ChunkEncoding::Dict16 { dict, codes }
        }
    }

    /// Number of rows in the chunk.
    pub fn len(&self) -> usize {
        match self {
            ChunkEncoding::Dict8 { codes, .. } => codes.len(),
            ChunkEncoding::Dict16 { codes, .. } => codes.len(),
            ChunkEncoding::F64(v) => v.len(),
        }
    }

    /// True when the chunk has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Heap bytes held by the encoded form (dictionary + codes / values).
    pub fn heap_bytes(&self) -> usize {
        match self {
            ChunkEncoding::Dict8 { dict, codes } => dict.len() * 8 + codes.len(),
            ChunkEncoding::Dict16 { dict, codes } => dict.len() * 8 + codes.len() * 2,
            ChunkEncoding::F64(v) => v.len() * 8,
        }
    }

    /// The chunk's exact distinct-value set (total_cmp-sorted), when
    /// dictionary-coded. `None` for the `F64` fallback.
    pub fn dict(&self) -> Option<&[f64]> {
        match self {
            ChunkEncoding::Dict8 { dict, .. } => Some(dict),
            ChunkEncoding::Dict16 { dict, .. } => Some(dict),
            ChunkEncoding::F64(_) => None,
        }
    }

    /// The value at row `i` within the chunk.
    pub fn value_at(&self, i: usize) -> f64 {
        match self {
            ChunkEncoding::Dict8 { dict, codes } => dict[codes[i] as usize],
            ChunkEncoding::Dict16 { dict, codes } => dict[codes[i] as usize],
            ChunkEncoding::F64(v) => v[i],
        }
    }

    /// Decode into `out` (cleared first). The result is bit-identical to
    /// the slice originally passed to [`encode`](Self::encode).
    pub fn decode_into(&self, out: &mut Vec<f64>) {
        out.clear();
        match self {
            ChunkEncoding::Dict8 { dict, codes } => {
                out.extend(codes.iter().map(|&c| dict[c as usize]));
            }
            ChunkEncoding::Dict16 { dict, codes } => {
                out.extend(codes.iter().map(|&c| dict[c as usize]));
            }
            ChunkEncoding::F64(v) => out.extend_from_slice(v),
        }
    }

    /// Fold over the chunk's values in row order without materializing.
    pub fn fold_values<T>(&self, init: T, mut f: impl FnMut(T, f64) -> T) -> T {
        let mut acc = init;
        match self {
            ChunkEncoding::Dict8 { dict, codes } => {
                for &c in codes {
                    acc = f(acc, dict[c as usize]);
                }
            }
            ChunkEncoding::Dict16 { dict, codes } => {
                for &c in codes {
                    acc = f(acc, dict[c as usize]);
                }
            }
            ChunkEncoding::F64(v) => {
                for &x in v {
                    acc = f(acc, x);
                }
            }
        }
        acc
    }

    /// Serialize to the `.eafc` chunk payload wire format (little-endian):
    /// `[tag u8][n_rows u32][dict_len u32][dict f64×][codes ...]` for the
    /// dictionary layouts, `[2][n_rows u32][values f64×]` for `F64`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(9 + self.heap_bytes());
        match self {
            ChunkEncoding::Dict8 { dict, codes } => {
                out.push(0);
                out.extend_from_slice(&(codes.len() as u32).to_le_bytes());
                out.extend_from_slice(&(dict.len() as u32).to_le_bytes());
                for v in dict {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                out.extend_from_slice(codes);
            }
            ChunkEncoding::Dict16 { dict, codes } => {
                out.push(1);
                out.extend_from_slice(&(codes.len() as u32).to_le_bytes());
                out.extend_from_slice(&(dict.len() as u32).to_le_bytes());
                for v in dict {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                for c in codes {
                    out.extend_from_slice(&c.to_le_bytes());
                }
            }
            ChunkEncoding::F64(values) => {
                out.push(2);
                out.extend_from_slice(&(values.len() as u32).to_le_bytes());
                for v in values {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        out
    }

    /// Deserialize a payload produced by [`to_bytes`](Self::to_bytes).
    pub fn from_bytes(bytes: &[u8]) -> Result<ChunkEncoding> {
        let bad = |msg: &str| TabularError::Io(format!("corrupt chunk payload: {msg}"));
        if bytes.len() < 5 {
            return Err(bad("truncated header"));
        }
        let tag = bytes[0];
        let n_rows = u32::from_le_bytes(bytes[1..5].try_into().expect("4 bytes")) as usize;
        let read_f64s = |at: usize, n: usize| -> Result<Vec<f64>> {
            let end = at + n * 8;
            if end > bytes.len() {
                return Err(bad("truncated f64 block"));
            }
            Ok((0..n)
                .map(|i| {
                    f64::from_le_bytes(
                        bytes[at + i * 8..at + i * 8 + 8]
                            .try_into()
                            .expect("8 bytes"),
                    )
                })
                .collect())
        };
        match tag {
            0 | 1 => {
                if bytes.len() < 9 {
                    return Err(bad("truncated dict header"));
                }
                let dict_len =
                    u32::from_le_bytes(bytes[5..9].try_into().expect("4 bytes")) as usize;
                let dict = read_f64s(9, dict_len)?;
                let at = 9 + dict_len * 8;
                if tag == 0 {
                    if at + n_rows > bytes.len() {
                        return Err(bad("truncated u8 codes"));
                    }
                    let codes = bytes[at..at + n_rows].to_vec();
                    if codes.iter().any(|&c| c as usize >= dict_len) {
                        return Err(bad("code out of dictionary range"));
                    }
                    Ok(ChunkEncoding::Dict8 { dict, codes })
                } else {
                    if at + n_rows * 2 > bytes.len() {
                        return Err(bad("truncated u16 codes"));
                    }
                    let codes: Vec<u16> = (0..n_rows)
                        .map(|i| {
                            u16::from_le_bytes(
                                bytes[at + i * 2..at + i * 2 + 2]
                                    .try_into()
                                    .expect("2 bytes"),
                            )
                        })
                        .collect();
                    if codes.iter().any(|&c| c as usize >= dict_len) {
                        return Err(bad("code out of dictionary range"));
                    }
                    Ok(ChunkEncoding::Dict16 { dict, codes })
                }
            }
            2 => Ok(ChunkEncoding::F64(read_f64s(5, n_rows)?)),
            t => Err(bad(&format!("unknown tag {t}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// ChunkedColumn / ChunkedFrame
// ---------------------------------------------------------------------------

/// Construction options for a [`ChunkedFrame`].
#[derive(Debug, Clone, Copy)]
pub struct ChunkOptions {
    /// Rows per chunk ([`DEFAULT_CHUNK_ROWS`] by default).
    pub chunk_rows: usize,
    /// Resident-bytes cap (unbounded by default).
    pub budget: FrameBudget,
}

impl Default for ChunkOptions {
    fn default() -> Self {
        ChunkOptions {
            chunk_rows: DEFAULT_CHUNK_ROWS,
            budget: FrameBudget::unbounded(),
        }
    }
}

impl ChunkOptions {
    /// Builder: rows per chunk.
    pub fn with_chunk_rows(mut self, rows: usize) -> Self {
        self.chunk_rows = rows.max(1);
        self
    }

    /// Builder: resident-bytes budget.
    pub fn with_budget(mut self, budget: FrameBudget) -> Self {
        self.budget = budget;
        self
    }
}

/// One column of a [`ChunkedFrame`]: a name plus handles to its chunks.
#[derive(Debug, Clone)]
pub struct ChunkedColumn {
    /// Column name (generated features carry their expression string).
    pub name: String,
    /// Slot ids of this column's chunks, in row order.
    slots: Vec<usize>,
    /// Rows accumulated so far.
    n_rows: usize,
}

impl ChunkedColumn {
    /// Rows in the column.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Chunks in the column.
    pub fn n_chunks(&self) -> usize {
        self.slots.len()
    }
}

#[derive(Debug)]
struct Slot {
    enc: Option<Arc<ChunkEncoding>>,
    ticket: Option<ChunkTicket>,
    bytes: usize,
    touched: u64,
}

#[derive(Debug, Default)]
struct CoreState {
    slots: Vec<Slot>,
    clock: u64,
    resident_bytes: u64,
    spilled: u64,
    evicted: u64,
    loaded: u64,
    decoded: u64,
}

#[derive(Debug)]
struct FrameCore {
    store: Box<dyn ColumnStore>,
    budget: FrameBudget,
    state: Mutex<CoreState>,
}

impl CoreState {
    fn resident_count(&self) -> u64 {
        self.slots.iter().filter(|s| s.enc.is_some()).count() as u64
    }
}

impl FrameCore {
    /// Spill + evict LRU resident chunks (never `keep`) until under budget.
    fn enforce_budget(&self, state: &mut CoreState, keep: usize) -> Result<()> {
        while state.resident_bytes > self.budget.resident_bytes {
            let lru = state
                .slots
                .iter()
                .enumerate()
                .filter(|(i, s)| *i != keep && s.enc.is_some())
                .min_by_key(|(_, s)| s.touched)
                .map(|(i, _)| i);
            let Some(i) = lru else { break };
            if state.slots[i].ticket.is_none() {
                let enc = state.slots[i].enc.as_ref().expect("resident").clone();
                let start = Instant::now();
                let ticket = self.store.append(&enc.to_bytes())?;
                telemetry::record("frame.spill_us", us_since(start));
                telemetry::count("frame.chunks_spilled", 1);
                state.slots[i].ticket = Some(ticket);
                state.spilled += 1;
                GLOBAL.spilled.fetch_add(1, Ordering::Relaxed);
            }
            let bytes = state.slots[i].bytes as u64;
            state.slots[i].enc = None;
            state.resident_bytes -= bytes;
            state.evicted += 1;
            telemetry::count("frame.chunks_evicted", 1);
            GLOBAL.evicted.fetch_add(1, Ordering::Relaxed);
            GLOBAL.resident.fetch_sub(1, Ordering::Relaxed);
            GLOBAL.resident_bytes.fetch_sub(bytes, Ordering::Relaxed);
        }
        Ok(())
    }

    fn insert(&self, enc: ChunkEncoding) -> Result<usize> {
        let bytes = enc.heap_bytes();
        let mut state = self.state.lock().expect("frame lock");
        let id = state.slots.len();
        state.clock += 1;
        let touched = state.clock;
        state.slots.push(Slot {
            enc: Some(Arc::new(enc)),
            ticket: None,
            bytes,
            touched,
        });
        state.resident_bytes += bytes as u64;
        telemetry::count("frame.chunks_resident", 1);
        GLOBAL.resident.fetch_add(1, Ordering::Relaxed);
        GLOBAL
            .resident_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.enforce_budget(&mut state, id)?;
        Ok(id)
    }

    fn get(&self, id: usize) -> Result<Arc<ChunkEncoding>> {
        let mut state = self.state.lock().expect("frame lock");
        state.clock += 1;
        let clock = state.clock;
        if let Some(enc) = &state.slots[id].enc {
            let enc = enc.clone();
            state.slots[id].touched = clock;
            return Ok(enc);
        }
        let ticket = state.slots[id]
            .ticket
            .expect("evicted chunk must have been spilled");
        let mut buf = Vec::new();
        self.store.read_into(&ticket, &mut buf)?;
        let enc = Arc::new(ChunkEncoding::from_bytes(&buf)?);
        let bytes = state.slots[id].bytes;
        state.slots[id].enc = Some(enc.clone());
        state.slots[id].touched = clock;
        state.resident_bytes += bytes as u64;
        state.loaded += 1;
        telemetry::count("frame.chunks_loaded", 1);
        telemetry::count("frame.chunks_resident", 1);
        GLOBAL.loaded.fetch_add(1, Ordering::Relaxed);
        GLOBAL.resident.fetch_add(1, Ordering::Relaxed);
        GLOBAL
            .resident_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.enforce_budget(&mut state, id)?;
        Ok(enc)
    }

    fn replace(&self, id: usize, enc: ChunkEncoding) -> Result<()> {
        let bytes = enc.heap_bytes();
        let mut state = self.state.lock().expect("frame lock");
        let was_resident = state.slots[id].enc.is_some();
        let old_bytes = state.slots[id].bytes as u64;
        if was_resident {
            state.resident_bytes -= old_bytes;
            GLOBAL
                .resident_bytes
                .fetch_sub(old_bytes, Ordering::Relaxed);
        } else {
            GLOBAL.resident.fetch_add(1, Ordering::Relaxed);
        }
        state.clock += 1;
        let touched = state.clock;
        let slot = &mut state.slots[id];
        slot.enc = Some(Arc::new(enc));
        slot.ticket = None; // stale spilled copy no longer describes the data
        slot.bytes = bytes;
        slot.touched = touched;
        state.resident_bytes += bytes as u64;
        GLOBAL
            .resident_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.enforce_budget(&mut state, id)?;
        Ok(())
    }
}

/// A column-major table stored as budgeted, compressed row chunks — the
/// out-of-core counterpart of [`DataFrame`]. The label stays in RAM (it is
/// consulted by every fold split); feature data lives in chunks.
#[derive(Debug, Clone)]
pub struct ChunkedFrame {
    /// Dataset name.
    pub name: String,
    label: Label,
    n_rows: usize,
    columns: Vec<ChunkedColumn>,
    chunk_rows: usize,
    core: Arc<FrameCore>,
}

impl ChunkedFrame {
    /// An empty frame (no columns yet) over the given label and store.
    pub fn new(
        name: impl Into<String>,
        label: Label,
        opts: ChunkOptions,
        store: Box<dyn ColumnStore>,
    ) -> Self {
        let n_rows = label.len();
        ChunkedFrame {
            name: name.into(),
            label,
            n_rows,
            columns: Vec::new(),
            chunk_rows: opts.chunk_rows.max(1),
            core: Arc::new(FrameCore {
                store,
                budget: opts.budget,
                state: Mutex::new(CoreState::default()),
            }),
        }
    }

    /// An empty frame whose label is not known yet (streaming producers
    /// compute labels after the feature sweep). The placeholder label is
    /// empty; call [`set_label`](Self::set_label) before handing the frame
    /// to consumers.
    pub fn new_streaming(
        name: impl Into<String>,
        n_rows: usize,
        opts: ChunkOptions,
        store: Box<dyn ColumnStore>,
    ) -> Self {
        let mut cf = ChunkedFrame::new(name, Label::Reg(Vec::new()), opts, store);
        cf.n_rows = n_rows;
        cf
    }

    /// Install the label of a frame built via
    /// [`new_streaming`](Self::new_streaming); must match the row count.
    pub fn set_label(&mut self, label: Label) -> Result<()> {
        if label.len() != self.n_rows {
            return Err(TabularError::LengthMismatch {
                what: "chunked frame label".into(),
                expected: self.n_rows,
                got: label.len(),
            });
        }
        self.label = label;
        Ok(())
    }

    /// Register a new (empty) column for chunk-at-a-time appends via
    /// [`append_chunk`](Self::append_chunk); returns its index.
    pub fn begin_column(&mut self, name: impl Into<String>) -> usize {
        self.columns.push(ChunkedColumn {
            name: name.into(),
            slots: Vec::new(),
            n_rows: 0,
        });
        self.columns.len() - 1
    }

    /// An empty frame backed by an [`InMemoryStore`].
    pub fn new_in_memory(name: impl Into<String>, label: Label, opts: ChunkOptions) -> Self {
        ChunkedFrame::new(name, label, opts, Box::new(InMemoryStore::new()))
    }

    /// Chunk-encode an in-RAM frame. Round-tripping through
    /// [`to_dataframe`](Self::to_dataframe) is bit-identical.
    pub fn from_dataframe(
        df: &DataFrame,
        opts: ChunkOptions,
        store: Box<dyn ColumnStore>,
    ) -> Result<ChunkedFrame> {
        let mut cf = ChunkedFrame::new(df.name.clone(), df.label().clone(), opts, store);
        for col in df.columns() {
            cf.push_column_values(&col.name, &col.values)?;
        }
        Ok(cf)
    }

    /// Rows (fixed at construction).
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Feature columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// Rows per (full) chunk.
    pub fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    /// Chunks per full column: `ceil(n_rows / chunk_rows)`.
    pub fn n_chunks(&self) -> usize {
        self.n_rows().div_ceil(self.chunk_rows)
    }

    /// Row range `[start, end)` covered by chunk `k`.
    pub fn chunk_row_range(&self, k: usize) -> (usize, usize) {
        let start = k * self.chunk_rows;
        (start, (start + self.chunk_rows).min(self.n_rows()))
    }

    /// The label.
    pub fn label(&self) -> &Label {
        &self.label
    }

    /// The downstream task type.
    pub fn task(&self) -> Task {
        self.label.task()
    }

    /// Borrow the column metadata.
    pub fn columns(&self) -> &[ChunkedColumn] {
        &self.columns
    }

    /// Name of column `idx`.
    pub fn column_name(&self, idx: usize) -> Result<&str> {
        self.columns
            .get(idx)
            .map(|c| c.name.as_str())
            .ok_or_else(|| TabularError::NoSuchColumn(format!("#{idx}")))
    }

    /// The frame's resident-bytes budget.
    pub fn budget(&self) -> FrameBudget {
        self.core.budget
    }

    /// The backing store's kind.
    pub fn store_kind(&self) -> crate::store::StoreKind {
        self.core.store.kind()
    }

    /// Append a new column from a full value slice, encoding chunk by
    /// chunk. Returns the new column index.
    pub fn push_column_values(&mut self, name: &str, values: &[f64]) -> Result<usize> {
        if values.len() != self.n_rows() {
            return Err(TabularError::LengthMismatch {
                what: format!("new chunked column `{name}`"),
                expected: self.n_rows(),
                got: values.len(),
            });
        }
        let chunks = values
            .chunks(self.chunk_rows)
            .map(ChunkEncoding::encode)
            .collect();
        self.push_column_chunks(name, chunks)
    }

    /// Append a new column from pre-encoded chunks (all but the last must
    /// hold exactly `chunk_rows` rows; totals must match the frame).
    /// Callers that encode chunks in parallel push them here in chunk-index
    /// order. Returns the new column index.
    pub fn push_column_chunks(&mut self, name: &str, chunks: Vec<ChunkEncoding>) -> Result<usize> {
        let idx = self.begin_column(name);
        for enc in chunks {
            if let Err(e) = self.append_chunk(idx, enc) {
                self.columns.pop();
                return Err(e);
            }
        }
        if self.columns[idx].n_rows != self.n_rows() {
            let got = self.columns[idx].n_rows;
            self.columns.pop();
            return Err(TabularError::LengthMismatch {
                what: format!("new chunked column `{name}`"),
                expected: self.n_rows(),
                got,
            });
        }
        Ok(idx)
    }

    /// Append one encoded chunk to a (possibly still partial) column.
    /// Streaming producers (the synthetic generator, chunk pipelines) call
    /// this in chunk-index order.
    pub fn append_chunk(&mut self, col: usize, enc: ChunkEncoding) -> Result<()> {
        let n_rows = self.n_rows();
        let chunk_rows = self.chunk_rows;
        let column = self
            .columns
            .get(col)
            .ok_or_else(|| TabularError::NoSuchColumn(format!("#{col}")))?;
        let expected = chunk_rows.min(n_rows - column.n_rows);
        if enc.len() != expected {
            return Err(TabularError::LengthMismatch {
                what: format!("chunk {} of column `{}`", column.n_chunks(), column.name),
                expected,
                got: enc.len(),
            });
        }
        let rows = enc.len();
        let id = self.core.insert(enc)?;
        let column = &mut self.columns[col];
        column.slots.push(id);
        column.n_rows += rows;
        Ok(())
    }

    /// Handle to chunk `k` of column `col`, loading from the store if it
    /// was evicted. The returned `Arc` stays valid even if the chunk is
    /// evicted again while the caller holds it.
    pub fn chunk(&self, col: usize, k: usize) -> Result<Arc<ChunkEncoding>> {
        let column = self
            .columns
            .get(col)
            .ok_or_else(|| TabularError::NoSuchColumn(format!("#{col}")))?;
        let id = *column.slots.get(k).ok_or_else(|| {
            TabularError::InvalidParam(format!(
                "chunk index {k} out of range for column `{}` ({} chunks)",
                column.name,
                column.n_chunks()
            ))
        })?;
        self.core.get(id)
    }

    /// Decode chunk `k` of column `col` into `out` (cleared first); returns
    /// the chunk's row count. This is the metered decode path
    /// (`frame.chunk_decode_us`).
    pub fn decode_chunk_into(&self, col: usize, k: usize, out: &mut Vec<f64>) -> Result<usize> {
        let enc = self.chunk(col, k)?;
        let start = Instant::now();
        enc.decode_into(out);
        telemetry::record("frame.chunk_decode_us", us_since(start));
        {
            let mut state = self.core.state.lock().expect("frame lock");
            state.decoded += 1;
        }
        GLOBAL.decoded.fetch_add(1, Ordering::Relaxed);
        Ok(out.len())
    }

    /// Visit every chunk of a column in chunk-index order, decoded into
    /// `buf`. The callback receives `(chunk_index, first_row, values)`.
    pub fn for_each_chunk(
        &self,
        col: usize,
        buf: &mut Vec<f64>,
        mut f: impl FnMut(usize, usize, &[f64]),
    ) -> Result<()> {
        let n_chunks = self
            .columns
            .get(col)
            .ok_or_else(|| TabularError::NoSuchColumn(format!("#{col}")))?
            .n_chunks();
        for k in 0..n_chunks {
            self.decode_chunk_into(col, k, buf)?;
            f(k, k * self.chunk_rows, buf);
        }
        Ok(())
    }

    /// Fold a column's values in row order without materializing the whole
    /// column, chunk by chunk. Bitwise identical to the same sequential
    /// fold over the flat column (chunking only regroups the iteration).
    pub fn fold_column<T>(&self, col: usize, init: T, mut f: impl FnMut(T, f64) -> T) -> Result<T> {
        let n_chunks = self
            .columns
            .get(col)
            .ok_or_else(|| TabularError::NoSuchColumn(format!("#{col}")))?
            .n_chunks();
        let mut acc = init;
        for k in 0..n_chunks {
            let enc = self.chunk(col, k)?;
            acc = enc.fold_values(acc, &mut f);
        }
        Ok(acc)
    }

    /// The value at `(col, row)`. Intended for small gathers; bulk access
    /// should go chunk-at-a-time.
    pub fn value_at(&self, col: usize, row: usize) -> Result<f64> {
        let k = row / self.chunk_rows;
        let enc = self.chunk(col, k)?;
        Ok(enc.value_at(row - k * self.chunk_rows))
    }

    /// Materialize one column into `out` (cleared first).
    pub fn materialize_column(&self, col: usize, out: &mut Vec<f64>) -> Result<()> {
        out.clear();
        out.reserve(self.n_rows());
        let mut buf = Vec::new();
        self.for_each_chunk(col, &mut buf, |_, _, vals| out.extend_from_slice(vals))?;
        Ok(())
    }

    /// Materialize the whole frame as an in-RAM [`DataFrame`]. Bit-identical
    /// to the data originally pushed.
    pub fn to_dataframe(&self) -> Result<DataFrame> {
        let mut columns = Vec::with_capacity(self.n_cols());
        for (i, c) in self.columns.iter().enumerate() {
            let mut values = Vec::new();
            self.materialize_column(i, &mut values)?;
            columns.push(Column::new(c.name.clone(), values));
        }
        DataFrame::new(self.name.clone(), columns, self.label.clone())
    }

    /// Replace every non-finite value with 0.0 chunk-at-a-time, re-encoding
    /// only chunks that changed; returns the number of replacements.
    /// Mirrors [`DataFrame::sanitize`].
    pub fn sanitize(&mut self) -> Result<usize> {
        let mut fixed = 0usize;
        let mut buf = Vec::new();
        for col in 0..self.n_cols() {
            for k in 0..self.columns[col].n_chunks() {
                let enc = self.chunk(col, k)?;
                let dirty = enc.fold_values(false, |d, v| d || !v.is_finite());
                if !dirty {
                    continue;
                }
                enc.decode_into(&mut buf);
                for v in buf.iter_mut() {
                    if !v.is_finite() {
                        *v = 0.0;
                        fixed += 1;
                    }
                }
                let id = self.columns[col].slots[k];
                self.core.replace(id, ChunkEncoding::encode(&buf))?;
            }
        }
        Ok(fixed)
    }

    /// A view of this frame holding the columns at `idx`, in that order.
    /// Chunk storage (and the budget) is shared with `self`; only the
    /// column descriptors are copied. Consumers that must present columns
    /// in an order other than insertion order (e.g. the engineered frame's
    /// subgroup order) reorder here instead of re-encoding.
    pub fn select_columns(&self, idx: &[usize]) -> Result<ChunkedFrame> {
        let columns = idx
            .iter()
            .map(|&i| {
                self.columns
                    .get(i)
                    .cloned()
                    .ok_or_else(|| TabularError::NoSuchColumn(format!("#{i}")))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(ChunkedFrame {
            name: self.name.clone(),
            label: self.label.clone(),
            n_rows: self.n_rows,
            columns,
            chunk_rows: self.chunk_rows,
            core: Arc::clone(&self.core),
        })
    }

    /// Residency/traffic statistics for this frame.
    pub fn stats(&self) -> FrameStats {
        let state = self.core.state.lock().expect("frame lock");
        FrameStats {
            chunks_resident: state.resident_count(),
            resident_bytes: state.resident_bytes,
            chunks_spilled: state.spilled,
            chunks_evicted: state.evicted,
            chunks_loaded: state.loaded,
            chunks_decoded: state.decoded,
        }
    }

    /// Total encoded bytes across all chunks (resident or spilled).
    pub fn encoded_bytes(&self) -> u64 {
        let state = self.core.state.lock().expect("frame lock");
        state.slots.iter().map(|s| s.bytes as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg_label(n: usize) -> Label {
        Label::Reg((0..n).map(|i| i as f64).collect())
    }

    #[test]
    fn encode_picks_the_dense_layout() {
        let low: Vec<f64> = (0..1000).map(|i| (i % 7) as f64).collect();
        assert!(matches!(
            ChunkEncoding::encode(&low),
            ChunkEncoding::Dict8 { .. }
        ));
        let mid: Vec<f64> = (0..2000).map(|i| (i % 600) as f64).collect();
        assert!(matches!(
            ChunkEncoding::encode(&mid),
            ChunkEncoding::Dict16 { .. }
        ));
        let high: Vec<f64> = (0..5000).map(|i| i as f64 * 1.000001).collect();
        assert!(matches!(
            ChunkEncoding::encode(&high),
            ChunkEncoding::F64(_)
        ));
    }

    #[test]
    fn round_trip_is_bit_identical_including_weird_floats() {
        let vals = vec![
            1.0,
            -0.0,
            0.0,
            f64::NAN,
            f64::from_bits(0x7ff8000000000001), // NaN with a payload
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            -0.0,
            1.0,
        ];
        let enc = ChunkEncoding::encode(&vals);
        let mut out = Vec::new();
        enc.decode_into(&mut out);
        let bits: Vec<u64> = vals.iter().map(|v| v.to_bits()).collect();
        let got: Vec<u64> = out.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits, got);
        // And through the wire format (byte-compare: NaN defeats PartialEq).
        let enc2 = ChunkEncoding::from_bytes(&enc.to_bytes()).unwrap();
        assert_eq!(enc.to_bytes(), enc2.to_bytes());
    }

    #[test]
    fn wire_format_rejects_corruption() {
        let enc = ChunkEncoding::encode(&[1.0, 2.0, 1.0]);
        let bytes = enc.to_bytes();
        assert!(ChunkEncoding::from_bytes(&bytes[..3]).is_err());
        let mut bad_tag = bytes.clone();
        bad_tag[0] = 9;
        assert!(ChunkEncoding::from_bytes(&bad_tag).is_err());
        let mut bad_code = bytes;
        *bad_code.last_mut().unwrap() = 200; // code beyond dict
        assert!(ChunkEncoding::from_bytes(&bad_code).is_err());
    }

    #[test]
    fn frame_round_trips_dataframe() {
        let df = DataFrame::new(
            "t",
            vec![
                Column::new("a", (0..300).map(|i| (i % 5) as f64).collect()),
                Column::new("b", (0..300).map(|i| i as f64 * 0.1).collect()),
            ],
            reg_label(300),
        )
        .unwrap();
        let cf = ChunkedFrame::from_dataframe(
            &df,
            ChunkOptions::default().with_chunk_rows(64),
            Box::new(InMemoryStore::new()),
        )
        .unwrap();
        assert_eq!(cf.n_chunks(), 5);
        assert_eq!(cf.to_dataframe().unwrap(), df);
        assert_eq!(
            cf.value_at(1, 299).unwrap().to_bits(),
            df.columns()[1].values[299].to_bits()
        );
    }

    #[test]
    fn budget_spills_and_reloads_losslessly() {
        let n = 10_000;
        let values: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let df = DataFrame::new(
            "t",
            vec![
                Column::new("a", values.clone()),
                Column::new("b", values.iter().map(|v| v * 2.0).collect()),
            ],
            reg_label(n),
        )
        .unwrap();
        // ~80KB of f64 per column, 1024-row chunks, 32KB budget → eviction.
        let cf = ChunkedFrame::from_dataframe(
            &df,
            ChunkOptions::default()
                .with_chunk_rows(1024)
                .with_budget(FrameBudget::from_bytes(32 * 1024)),
            Box::new(InMemoryStore::new()),
        )
        .unwrap();
        let stats = cf.stats();
        assert!(stats.chunks_spilled > 0, "budget should force spills");
        assert!(stats.resident_bytes <= 32 * 1024);
        assert_eq!(cf.to_dataframe().unwrap(), df);
        let stats = cf.stats();
        assert!(stats.chunks_loaded > 0, "materialize should reload");
    }

    #[test]
    fn sanitize_matches_flat_sanitize() {
        let mut values: Vec<f64> = (0..500).map(|i| i as f64).collect();
        values[7] = f64::NAN;
        values[499] = f64::INFINITY;
        let mut df = DataFrame::new("t", vec![Column::new("a", values)], reg_label(500)).unwrap();
        let mut cf = ChunkedFrame::from_dataframe(
            &df,
            ChunkOptions::default().with_chunk_rows(100),
            Box::new(InMemoryStore::new()),
        )
        .unwrap();
        assert_eq!(cf.sanitize().unwrap(), df.sanitize());
        assert_eq!(cf.to_dataframe().unwrap(), df);
    }

    #[test]
    fn fold_column_matches_flat_fold() {
        let values: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 - 50.0).collect();
        let df =
            DataFrame::new("t", vec![Column::new("a", values.clone())], reg_label(1000)).unwrap();
        let cf = ChunkedFrame::from_dataframe(
            &df,
            ChunkOptions::default().with_chunk_rows(128),
            Box::new(InMemoryStore::new()),
        )
        .unwrap();
        let flat = values.iter().fold(f64::INFINITY, |a, &v| a.min(v));
        let chunked = cf.fold_column(0, f64::INFINITY, |a, v| a.min(v)).unwrap();
        assert_eq!(flat.to_bits(), chunked.to_bits());
    }

    #[test]
    fn append_chunk_validates_shape() {
        let mut cf = ChunkedFrame::new_in_memory(
            "t",
            reg_label(250),
            ChunkOptions::default().with_chunk_rows(100),
        );
        let col = cf.push_column_chunks("a", vec![]).unwrap_err();
        assert!(matches!(col, TabularError::LengthMismatch { .. }));
        let mut cf2 = ChunkedFrame::new_in_memory(
            "t",
            reg_label(250),
            ChunkOptions::default().with_chunk_rows(100),
        );
        let chunks = vec![
            ChunkEncoding::encode(&vec![1.0; 100]),
            ChunkEncoding::encode(&vec![2.0; 100]),
            ChunkEncoding::encode(&vec![3.0; 50]),
        ];
        let idx = cf2.push_column_chunks("a", chunks).unwrap();
        assert_eq!(idx, 0);
        assert_eq!(cf2.columns()[0].n_chunks(), 3);
        // A wrong-sized middle chunk is rejected.
        let mut cf3 = ChunkedFrame::new_in_memory(
            "t",
            reg_label(250),
            ChunkOptions::default().with_chunk_rows(100),
        );
        cf3.push_column_chunks("a", vec![ChunkEncoding::encode(&vec![0.0; 99])])
            .unwrap_err();
    }
}
