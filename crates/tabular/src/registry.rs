//! Registry of the paper's 36 evaluation datasets (Table III) and the public
//! pre-training corpus (239 OpenML datasets in the paper).
//!
//! The real datasets are not redistributable, so each registry entry pairs
//! the paper-reported shape with a deterministic synthetic stand-in of the
//! same shape (see [`crate::synth`] and DESIGN.md §2 for why the substitution
//! preserves the measured behaviour). Ultra-wide datasets (> [`FEATURE_CAP`]
//! columns) are capped, mirroring the paper's own RF-importance pre-selection
//! step ("E-AFE first conducts feature selection of less than maximum
//! features … on the 36 raw target datasets", §IV-B).

use crate::error::{Result, TabularError};
use crate::frame::{DataFrame, Task};
use crate::synth::SynthSpec;
use serde::{Deserialize, Serialize};

/// Hard cap on generated feature columns for ultra-wide datasets.
pub const FEATURE_CAP: usize = 512;

/// Hard cap on generated rows for very tall datasets; benches can lower it
/// further with a scale factor, never raise it above the paper shape.
pub const SAMPLE_CAP: usize = 20_000;

/// Static description of one of the paper's target datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetInfo {
    /// Dataset name as printed in Table III.
    pub name: &'static str,
    /// Downstream task.
    pub task: Task,
    /// Paper-reported sample count.
    pub samples: usize,
    /// Paper-reported feature count.
    pub features: usize,
    /// Class count used by the synthetic stand-in (2 unless noted).
    pub classes: usize,
}

/// All 36 target datasets of Table III, in paper order
/// (26 classification, 10 regression).
pub const TARGET_DATASETS: [DatasetInfo; 36] = [
    ds("Higgs Boson", Task::Classification, 50000, 28, 2),
    ds("A. Employee", Task::Classification, 32769, 9, 2),
    ds("PimaIndian", Task::Classification, 768, 8, 2),
    ds("SpectF", Task::Classification, 267, 44, 2),
    ds("SVMGuide3", Task::Classification, 1243, 21, 2),
    ds("German Credit", Task::Classification, 1001, 24, 2),
    ds("Bikeshare DC", Task::Regression, 10886, 11, 1),
    ds("Housing Boston", Task::Regression, 506, 13, 1),
    ds("Airfoil", Task::Regression, 1503, 5, 1),
    ds("AP. ovary", Task::Classification, 275, 10936, 2),
    ds("Lymphography", Task::Classification, 148, 18, 4),
    ds("Ionosphere", Task::Classification, 351, 34, 2),
    ds("Openml 618", Task::Regression, 1000, 50, 1),
    ds("Openml 589", Task::Regression, 1000, 25, 1),
    ds("Openml 616", Task::Regression, 500, 50, 1),
    ds("Openml 607", Task::Regression, 1000, 50, 1),
    ds("Openml 620", Task::Regression, 1000, 25, 1),
    ds("Openml 637", Task::Regression, 500, 50, 1),
    ds("Openml 586", Task::Regression, 1000, 25, 1),
    ds("Credit Default", Task::Classification, 30000, 25, 2),
    ds("Messidor features", Task::Classification, 1150, 19, 2),
    ds("Wine Q. Red", Task::Classification, 999, 12, 3),
    ds("Wine Q. White", Task::Classification, 4900, 12, 3),
    ds("SpamBase", Task::Classification, 4601, 57, 2),
    ds("AP. lung", Task::Classification, 203, 10936, 2),
    ds("credit-a", Task::Classification, 690, 6, 2),
    ds("diabetes", Task::Classification, 768, 8, 2),
    ds("fertility", Task::Classification, 100, 9, 2),
    ds("gisette", Task::Classification, 2100, 5000, 2),
    ds("hepatitis", Task::Classification, 155, 6, 2),
    ds("labor", Task::Classification, 57, 8, 2),
    ds("lymph", Task::Classification, 138, 10936, 4),
    ds("madelon", Task::Classification, 780, 500, 2),
    ds("megawatt1", Task::Classification, 253, 37, 2),
    ds("secom", Task::Classification, 470, 590, 2),
    ds("sonar", Task::Classification, 208, 60, 2),
];

const fn ds(
    name: &'static str,
    task: Task,
    samples: usize,
    features: usize,
    classes: usize,
) -> DatasetInfo {
    DatasetInfo {
        name,
        task,
        samples,
        features,
        classes,
    }
}

impl DatasetInfo {
    /// Effective (generated) shape after the feature cap, sample cap, and an
    /// optional scale factor in (0, 1] applied to the sample count.
    pub fn effective_shape(&self, scale: f64) -> (usize, usize) {
        let scale = scale.clamp(1e-6, 1.0);
        let rows = (((self.samples as f64) * scale).round() as usize)
            .clamp(1, SAMPLE_CAP)
            .min(self.samples)
            .max(24); // enough rows for 5-fold stratified CV
        let cols = self.features.min(FEATURE_CAP);
        (rows.min(self.samples.max(24)), cols)
    }

    /// Generate the synthetic stand-in at full (capped) shape.
    pub fn load(&self) -> Result<DataFrame> {
        self.load_scaled(1.0)
    }

    /// Generate the synthetic stand-in at a scaled sample count.
    pub fn load_scaled(&self, scale: f64) -> Result<DataFrame> {
        let (rows, cols) = self.effective_shape(scale);
        SynthSpec::new(self.name, rows, cols, self.task)
            .with_classes(self.classes.max(2))
            .with_seed(0xE_AFE)
            .generate()
    }
}

/// Look up a Table III dataset by (case-insensitive) name.
pub fn find_dataset(name: &str) -> Result<DatasetInfo> {
    TARGET_DATASETS
        .iter()
        .find(|d| d.name.eq_ignore_ascii_case(name))
        .copied()
        .ok_or_else(|| TabularError::NoSuchColumn(format!("dataset `{name}`")))
}

/// The four datasets used in the paper's Table I / Figure 1 motivation study.
pub fn motivation_datasets() -> Vec<DatasetInfo> {
    ["PimaIndian", "credit-a", "diabetes", "German Credit"]
        .iter()
        .map(|n| find_dataset(n).expect("motivation datasets are registered"))
        .collect()
}

/// Generate the public pre-training corpus: `n_class` classification and
/// `n_reg` regression datasets with varied shapes (the paper uses 141 + 98).
/// Shapes are drawn deterministically from `seed`.
pub fn public_corpus(n_class: usize, n_reg: usize, seed: u64) -> Result<Vec<DataFrame>> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n_class + n_reg);
    for i in 0..(n_class + n_reg) {
        let task = if i < n_class {
            Task::Classification
        } else {
            Task::Regression
        };
        let rows = rng.gen_range(120..800);
        let cols = rng.gen_range(5..24);
        let classes = if task == Task::Classification {
            rng.gen_range(2..4)
        } else {
            1
        };
        let frame = SynthSpec::new(format!("public-{i}"), rows, cols, task)
            .with_classes(classes.max(2))
            .with_noise(rng.gen_range(0.05..0.4))
            .with_depth(rng.gen_range(1..4))
            .with_seed(seed.wrapping_add(i as u64 * 7919))
            .generate()?;
        out.push(frame);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_paper_counts() {
        assert_eq!(TARGET_DATASETS.len(), 36);
        let n_class = TARGET_DATASETS
            .iter()
            .filter(|d| d.task == Task::Classification)
            .count();
        assert_eq!(n_class, 26);
        assert_eq!(36 - n_class, 10);
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert_eq!(find_dataset("pimaindian").unwrap().samples, 768);
        assert!(find_dataset("no-such").is_err());
    }

    #[test]
    fn effective_shape_applies_caps() {
        let wide = find_dataset("AP. ovary").unwrap();
        let (rows, cols) = wide.effective_shape(1.0);
        assert_eq!(cols, FEATURE_CAP);
        assert_eq!(rows, 275);

        let tall = find_dataset("Higgs Boson").unwrap();
        let (rows, _) = tall.effective_shape(1.0);
        assert_eq!(rows, SAMPLE_CAP);
    }

    #[test]
    fn scale_reduces_rows_with_floor() {
        let d = find_dataset("PimaIndian").unwrap();
        let (rows, cols) = d.effective_shape(0.1);
        assert_eq!(cols, 8);
        assert_eq!(rows, 77);
        let (tiny_rows, _) = d.effective_shape(0.0001);
        assert_eq!(tiny_rows, 24); // floor for 5-fold CV
    }

    #[test]
    fn load_scaled_generates_dataset() {
        let d = find_dataset("labor").unwrap();
        let f = d.load().unwrap();
        assert_eq!(f.n_rows(), 57);
        assert_eq!(f.n_cols(), 8);
        assert_eq!(f.task(), Task::Classification);
    }

    #[test]
    fn motivation_datasets_present() {
        let m = motivation_datasets();
        assert_eq!(m.len(), 4);
        assert_eq!(m[0].name, "PimaIndian");
    }

    #[test]
    fn public_corpus_mixes_tasks() {
        let corpus = public_corpus(3, 2, 11).unwrap();
        assert_eq!(corpus.len(), 5);
        assert_eq!(
            corpus
                .iter()
                .filter(|f| f.task() == Task::Classification)
                .count(),
            3
        );
        // Deterministic.
        let again = public_corpus(3, 2, 11).unwrap();
        assert_eq!(corpus[0], again[0]);
    }
}
