//! A single named feature column of `f64` values plus summary statistics.

use serde::{Deserialize, Serialize};

/// A named column of numeric feature values.
///
/// E-AFE operates purely on numeric features (the paper's operator set is
/// arithmetic), so every column is stored as `Vec<f64>`. Categorical inputs
/// are expected to be integer-encoded upstream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Column {
    /// Human-readable name; generated features carry their expression string.
    pub name: String,
    /// Row values, one per sample.
    pub values: Vec<f64>,
}

impl Column {
    /// Create a column from a name and values.
    pub fn new(name: impl Into<String>, values: Vec<f64>) -> Self {
        Self {
            name: name.into(),
            values,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean; 0.0 for an empty column.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Population standard deviation; 0.0 for columns with < 2 rows.
    pub fn std(&self) -> f64 {
        if self.values.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var =
            self.values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / self.values.len() as f64;
        var.sqrt()
    }

    /// Minimum value, ignoring NaNs; `None` for an empty or all-NaN column.
    pub fn min(&self) -> Option<f64> {
        self.values
            .iter()
            .copied()
            .filter(|v| !v.is_nan())
            .fold(None, |acc, v| match acc {
                None => Some(v),
                Some(a) => Some(a.min(v)),
            })
    }

    /// Maximum value, ignoring NaNs; `None` for an empty or all-NaN column.
    pub fn max(&self) -> Option<f64> {
        self.values
            .iter()
            .copied()
            .filter(|v| !v.is_nan())
            .fold(None, |acc, v| match acc {
                None => Some(v),
                Some(a) => Some(a.max(v)),
            })
    }

    /// Number of distinct finite values (exact, via sorted scan).
    pub fn n_unique(&self) -> usize {
        let mut vals: Vec<f64> = self
            .values
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .collect();
        vals.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        vals.dedup();
        vals.len()
    }

    /// True when every value is finite (no NaN or ±Inf).
    pub fn is_finite(&self) -> bool {
        self.values.iter().all(|v| v.is_finite())
    }

    /// True when the column is (numerically) constant: max − min < `eps`.
    pub fn is_constant(&self, eps: f64) -> bool {
        match (self.min(), self.max()) {
            (Some(lo), Some(hi)) => hi - lo < eps,
            _ => true,
        }
    }

    /// Replace every non-finite entry by `replacement`, returning how many
    /// entries were replaced. Downstream learners require finite input.
    pub fn sanitize(&mut self, replacement: f64) -> usize {
        let mut fixed = 0;
        for v in &mut self.values {
            if !v.is_finite() {
                *v = replacement;
                fixed += 1;
            }
        }
        fixed
    }

    /// Pearson correlation with another column of equal length.
    /// Returns 0.0 when either column is constant.
    pub fn correlation(&self, other: &Column) -> f64 {
        debug_assert_eq!(self.len(), other.len());
        let n = self.len();
        if n < 2 {
            return 0.0;
        }
        let (ma, mb) = (self.mean(), other.mean());
        let (mut cov, mut va, mut vb) = (0.0, 0.0, 0.0);
        for i in 0..n {
            let da = self.values[i] - ma;
            let db = other.values[i] - mb;
            cov += da * db;
            va += da * da;
            vb += db * db;
        }
        if va <= f64::EPSILON || vb <= f64::EPSILON {
            return 0.0;
        }
        cov / (va.sqrt() * vb.sqrt())
    }

    /// Gather a sub-column at the given row indices.
    pub fn take(&self, indices: &[usize]) -> Column {
        Column {
            name: self.name.clone(),
            values: indices.iter().map(|&i| self.values[i]).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(values: &[f64]) -> Column {
        Column::new("c", values.to_vec())
    }

    #[test]
    fn basic_stats() {
        let c = col(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
        assert!((c.mean() - 2.5).abs() < 1e-12);
        assert!((c.std() - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(c.min(), Some(1.0));
        assert_eq!(c.max(), Some(4.0));
        assert_eq!(c.n_unique(), 4);
    }

    #[test]
    fn empty_column_stats_are_safe() {
        let c = col(&[]);
        assert_eq!(c.mean(), 0.0);
        assert_eq!(c.std(), 0.0);
        assert_eq!(c.min(), None);
        assert_eq!(c.max(), None);
        assert_eq!(c.n_unique(), 0);
        assert!(c.is_constant(1e-9));
    }

    #[test]
    fn nan_handling() {
        let mut c = col(&[1.0, f64::NAN, 3.0, f64::INFINITY]);
        assert!(!c.is_finite());
        assert_eq!(c.min(), Some(1.0));
        // Inf is not NaN so max sees it.
        assert_eq!(c.max(), Some(f64::INFINITY));
        assert_eq!(c.n_unique(), 2); // only finite values counted
        let fixed = c.sanitize(0.0);
        assert_eq!(fixed, 2);
        assert!(c.is_finite());
    }

    #[test]
    fn constant_detection() {
        assert!(col(&[5.0, 5.0, 5.0]).is_constant(1e-9));
        assert!(!col(&[5.0, 5.1]).is_constant(1e-9));
    }

    #[test]
    fn correlation_perfect_and_constant() {
        let a = col(&[1.0, 2.0, 3.0]);
        let b = col(&[2.0, 4.0, 6.0]);
        assert!((a.correlation(&b) - 1.0).abs() < 1e-12);
        let neg = col(&[3.0, 2.0, 1.0]);
        assert!((a.correlation(&neg) + 1.0).abs() < 1e-12);
        let konst = col(&[7.0, 7.0, 7.0]);
        assert_eq!(a.correlation(&konst), 0.0);
    }

    #[test]
    fn take_gathers_rows() {
        let c = col(&[10.0, 20.0, 30.0]);
        let t = c.take(&[2, 0]);
        assert_eq!(t.values, vec![30.0, 10.0]);
        assert_eq!(t.name, "c");
    }
}
