//! Error types for the `tabular` crate.

use std::fmt;

/// Errors produced by data-frame construction, I/O, splitting, and sampling.
#[derive(Debug, Clone, PartialEq)]
pub enum TabularError {
    /// Columns (or a column and the label) have mismatched lengths.
    LengthMismatch {
        /// Context describing what was being compared.
        what: String,
        /// Expected length.
        expected: usize,
        /// Actual length.
        got: usize,
    },
    /// A referenced column name or index does not exist.
    NoSuchColumn(String),
    /// The operation requires a non-empty frame but the frame had no rows
    /// or no columns.
    Empty(String),
    /// A parameter was outside its valid domain.
    InvalidParam(String),
    /// CSV parse failure with 1-based line number.
    Csv {
        /// 1-based line number of the offending row.
        line: usize,
        /// What went wrong on that line.
        msg: String,
    },
    /// Underlying I/O failure (message only, to keep the error `Clone`).
    Io(String),
}

impl fmt::Display for TabularError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TabularError::LengthMismatch {
                what,
                expected,
                got,
            } => write!(
                f,
                "length mismatch in {what}: expected {expected}, got {got}"
            ),
            TabularError::NoSuchColumn(name) => write!(f, "no such column: {name}"),
            TabularError::Empty(what) => write!(f, "empty input: {what}"),
            TabularError::InvalidParam(msg) => write!(f, "invalid parameter: {msg}"),
            TabularError::Csv { line, msg } => write!(f, "csv parse error at line {line}: {msg}"),
            TabularError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for TabularError {}

impl From<std::io::Error> for TabularError {
    fn from(e: std::io::Error) -> Self {
        TabularError::Io(e.to_string())
    }
}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TabularError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TabularError::LengthMismatch {
            what: "column `x` vs label".into(),
            expected: 10,
            got: 9,
        };
        let s = e.to_string();
        assert!(s.contains("column `x`"));
        assert!(s.contains("10"));
        assert!(s.contains('9'));

        assert!(TabularError::NoSuchColumn("foo".into())
            .to_string()
            .contains("foo"));
        assert!(TabularError::Csv {
            line: 3,
            msg: "bad float".into()
        }
        .to_string()
        .contains("line 3"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: TabularError = io.into();
        assert!(matches!(e, TabularError::Io(_)));
        assert!(e.to_string().contains("gone"));
    }
}
