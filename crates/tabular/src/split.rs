//! Train/test splitting and (stratified) k-fold cross-validation index
//! generation. All splitters are deterministic given a seed.

use crate::error::{Result, TabularError};
use crate::frame::{DataFrame, Label};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A single train/test index partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    /// Row indices assigned to the training portion.
    pub train: Vec<usize>,
    /// Row indices assigned to the test portion.
    pub test: Vec<usize>,
}

/// Shuffle-and-cut train/test split. `test_fraction` must be in (0, 1) and
/// both sides must end up non-empty.
pub fn train_test_indices(n_rows: usize, test_fraction: f64, seed: u64) -> Result<Split> {
    if !(0.0..1.0).contains(&test_fraction) || test_fraction == 0.0 {
        return Err(TabularError::InvalidParam(format!(
            "test_fraction must be in (0,1), got {test_fraction}"
        )));
    }
    if n_rows < 2 {
        return Err(TabularError::Empty(format!(
            "need at least 2 rows to split, got {n_rows}"
        )));
    }
    let mut idx: Vec<usize> = (0..n_rows).collect();
    idx.shuffle(&mut StdRng::seed_from_u64(seed));
    let n_test = ((n_rows as f64) * test_fraction).round().max(1.0) as usize;
    let n_test = n_test.min(n_rows - 1);
    let (test, train) = idx.split_at(n_test);
    Ok(Split {
        train: train.to_vec(),
        test: test.to_vec(),
    })
}

/// Split a frame into (train, test) frames.
pub fn train_test_split(
    frame: &DataFrame,
    test_fraction: f64,
    seed: u64,
) -> Result<(DataFrame, DataFrame)> {
    let split = train_test_indices(frame.n_rows(), test_fraction, seed)?;
    Ok((
        frame.take_rows(&split.train)?,
        frame.take_rows(&split.test)?,
    ))
}

/// Plain k-fold partition of `n_rows` rows into `k` folds after a seeded
/// shuffle. Every row appears in exactly one test fold.
pub fn kfold_indices(n_rows: usize, k: usize, seed: u64) -> Result<Vec<Split>> {
    if k < 2 {
        return Err(TabularError::InvalidParam(format!(
            "k-fold requires k >= 2, got {k}"
        )));
    }
    if n_rows < k {
        return Err(TabularError::Empty(format!(
            "need at least k = {k} rows, got {n_rows}"
        )));
    }
    let mut idx: Vec<usize> = (0..n_rows).collect();
    idx.shuffle(&mut StdRng::seed_from_u64(seed));
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, &row) in idx.iter().enumerate() {
        folds[i % k].push(row);
    }
    Ok(build_splits(folds))
}

/// Stratified k-fold for classification: each fold approximately preserves
/// the class distribution. Falls back to an error for regression labels.
pub fn stratified_kfold_indices(label: &Label, k: usize, seed: u64) -> Result<Vec<Split>> {
    let y = match label {
        Label::Class { y, .. } => y,
        Label::Reg(_) => {
            return Err(TabularError::InvalidParam(
                "stratified k-fold requires classification labels".into(),
            ))
        }
    };
    if k < 2 {
        return Err(TabularError::InvalidParam(format!(
            "k-fold requires k >= 2, got {k}"
        )));
    }
    if y.len() < k {
        return Err(TabularError::Empty(format!(
            "need at least k = {k} rows, got {}",
            y.len()
        )));
    }
    let n_classes = label.n_classes();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); n_classes];
    for (i, &c) in y.iter().enumerate() {
        per_class[c].push(i);
    }
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut cursor = 0usize; // round-robin across class boundaries too
    for class_rows in &mut per_class {
        class_rows.shuffle(&mut rng);
        for &row in class_rows.iter() {
            folds[cursor % k].push(row);
            cursor += 1;
        }
    }
    Ok(build_splits(folds))
}

/// Choose the appropriate k-fold strategy for the label type: stratified for
/// classification, plain for regression.
pub fn cv_indices(label: &Label, k: usize, seed: u64) -> Result<Vec<Split>> {
    match label {
        Label::Class { .. } => stratified_kfold_indices(label, k, seed),
        Label::Reg(y) => kfold_indices(y.len(), k, seed),
    }
}

fn build_splits(folds: Vec<Vec<usize>>) -> Vec<Split> {
    let k = folds.len();
    (0..k)
        .map(|t| {
            let test = folds[t].clone();
            let train = folds
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != t)
                .flat_map(|(_, f)| f.iter().copied())
                .collect();
            Split { train, test }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::frame::{DataFrame, Label};

    #[test]
    fn train_test_partition_is_complete_and_disjoint() {
        let s = train_test_indices(100, 0.25, 7).unwrap();
        assert_eq!(s.test.len(), 25);
        assert_eq!(s.train.len(), 75);
        let mut all: Vec<usize> = s.train.iter().chain(&s.test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn train_test_is_deterministic_per_seed() {
        let a = train_test_indices(50, 0.2, 42).unwrap();
        let b = train_test_indices(50, 0.2, 42).unwrap();
        let c = train_test_indices(50, 0.2, 43).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn train_test_rejects_bad_params() {
        assert!(train_test_indices(10, 0.0, 0).is_err());
        assert!(train_test_indices(10, 1.0, 0).is_err());
        assert!(train_test_indices(1, 0.5, 0).is_err());
    }

    #[test]
    fn tiny_split_keeps_both_sides_nonempty() {
        let s = train_test_indices(2, 0.9, 0).unwrap();
        assert_eq!(s.test.len(), 1);
        assert_eq!(s.train.len(), 1);
    }

    #[test]
    fn kfold_covers_all_rows_once() {
        let splits = kfold_indices(23, 5, 3).unwrap();
        assert_eq!(splits.len(), 5);
        let mut seen = [0usize; 23];
        for s in &splits {
            assert_eq!(s.train.len() + s.test.len(), 23);
            for &i in &s.test {
                seen[i] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn kfold_rejects_bad_params() {
        assert!(kfold_indices(10, 1, 0).is_err());
        assert!(kfold_indices(3, 5, 0).is_err());
    }

    #[test]
    fn stratified_preserves_class_balance() {
        // 40 of class 0, 20 of class 1.
        let mut y = vec![0usize; 40];
        y.extend(vec![1usize; 20]);
        let label = Label::Class { y, n_classes: 2 };
        let splits = stratified_kfold_indices(&label, 4, 9).unwrap();
        for s in &splits {
            let ones = s
                .test
                .iter()
                .filter(|&&i| label.classes().unwrap()[i] == 1)
                .count();
            // Each fold of 15 should hold ~5 of class 1.
            assert!((4..=6).contains(&ones), "fold had {ones} of class 1");
        }
    }

    #[test]
    fn stratified_rejects_regression() {
        assert!(stratified_kfold_indices(&Label::Reg(vec![1.0; 10]), 2, 0).is_err());
    }

    #[test]
    fn cv_indices_dispatches_on_task() {
        let class = Label::Class {
            y: vec![0, 1, 0, 1, 0, 1],
            n_classes: 2,
        };
        assert_eq!(cv_indices(&class, 3, 0).unwrap().len(), 3);
        let reg = Label::Reg(vec![0.0; 6]);
        assert_eq!(cv_indices(&reg, 3, 0).unwrap().len(), 3);
    }

    #[test]
    fn split_frames_have_expected_rows() {
        let f = DataFrame::new(
            "t",
            vec![Column::new("a", (0..10).map(|i| i as f64).collect())],
            Label::Reg((0..10).map(|i| i as f64).collect()),
        )
        .unwrap();
        let (tr, te) = train_test_split(&f, 0.3, 1).unwrap();
        assert_eq!(tr.n_rows(), 7);
        assert_eq!(te.n_rows(), 3);
        // Feature and label stay aligned through the split.
        for (i, &v) in tr.column(0).unwrap().values.iter().enumerate() {
            assert_eq!(v, tr.label().targets().unwrap()[i]);
        }
    }
}
