//! Row sampling utilities: uniform subsampling, stratified subsampling and
//! bootstrap draws. These drive the paper's Figure 1 experiment (sample
//! percentage vs performance/time) and the random-forest substrate.

use crate::error::{Result, TabularError};
use crate::frame::{DataFrame, Label};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Uniformly subsample `fraction` of the rows without replacement.
/// At least one row is always kept.
pub fn subsample_fraction(frame: &DataFrame, fraction: f64, seed: u64) -> Result<DataFrame> {
    if !(0.0..=1.0).contains(&fraction) || fraction == 0.0 {
        return Err(TabularError::InvalidParam(format!(
            "fraction must be in (0,1], got {fraction}"
        )));
    }
    let n = frame.n_rows();
    if n == 0 {
        return Err(TabularError::Empty(
            "cannot subsample an empty frame".into(),
        ));
    }
    let keep = (((n as f64) * fraction).round() as usize).clamp(1, n);
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut StdRng::seed_from_u64(seed));
    idx.truncate(keep);
    idx.sort_unstable(); // preserve original row ordering
    frame.take_rows(&idx)
}

/// Stratified subsample for classification frames: keeps `fraction` of each
/// class (at least one row per non-empty class). Falls back to uniform
/// subsampling for regression frames.
pub fn stratified_subsample(frame: &DataFrame, fraction: f64, seed: u64) -> Result<DataFrame> {
    let y = match frame.label() {
        Label::Class { y, .. } => y.clone(),
        Label::Reg(_) => return subsample_fraction(frame, fraction, seed),
    };
    if !(0.0..=1.0).contains(&fraction) || fraction == 0.0 {
        return Err(TabularError::InvalidParam(format!(
            "fraction must be in (0,1], got {fraction}"
        )));
    }
    if y.is_empty() {
        return Err(TabularError::Empty(
            "cannot subsample an empty frame".into(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let n_classes = frame.label().n_classes();
    let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); n_classes];
    for (i, &c) in y.iter().enumerate() {
        per_class[c].push(i);
    }
    let mut kept = Vec::new();
    for rows in &mut per_class {
        if rows.is_empty() {
            continue;
        }
        rows.shuffle(&mut rng);
        let keep = (((rows.len() as f64) * fraction).round() as usize).clamp(1, rows.len());
        kept.extend_from_slice(&rows[..keep]);
    }
    kept.sort_unstable();
    frame.take_rows(&kept)
}

/// Draw `n` bootstrap row indices (with replacement) from `0..n_rows`.
pub fn bootstrap_indices(n_rows: usize, n: usize, rng: &mut impl Rng) -> Vec<usize> {
    (0..n).map(|_| rng.gen_range(0..n_rows)).collect()
}

/// Out-of-bag indices for a bootstrap draw: the rows never sampled.
pub fn oob_indices(n_rows: usize, bootstrap: &[usize]) -> Vec<usize> {
    let mut in_bag = vec![false; n_rows];
    for &i in bootstrap {
        in_bag[i] = true;
    }
    (0..n_rows).filter(|&i| !in_bag[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::frame::{DataFrame, Label};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn class_frame(n: usize) -> DataFrame {
        DataFrame::new(
            "t",
            vec![Column::new("a", (0..n).map(|i| i as f64).collect())],
            Label::Class {
                y: (0..n).map(|i| i % 3).collect(),
                n_classes: 3,
            },
        )
        .unwrap()
    }

    #[test]
    fn subsample_keeps_expected_count() {
        let f = class_frame(100);
        let s = subsample_fraction(&f, 0.25, 1).unwrap();
        assert_eq!(s.n_rows(), 25);
        // Ordering preserved ascending since source column is 0..n.
        let v = &s.column(0).unwrap().values;
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn subsample_min_one_row() {
        let f = class_frame(10);
        let s = subsample_fraction(&f, 0.01, 1).unwrap();
        assert_eq!(s.n_rows(), 1);
    }

    #[test]
    fn subsample_rejects_bad_fraction() {
        let f = class_frame(10);
        assert!(subsample_fraction(&f, 0.0, 1).is_err());
        assert!(subsample_fraction(&f, 1.5, 1).is_err());
    }

    #[test]
    fn stratified_keeps_all_classes() {
        let f = class_frame(90);
        let s = stratified_subsample(&f, 0.1, 2).unwrap();
        let y = s.label().classes().unwrap();
        for c in 0..3 {
            assert!(y.contains(&c), "class {c} missing after subsample");
        }
        assert_eq!(s.n_rows(), 9);
    }

    #[test]
    fn stratified_falls_back_for_regression() {
        let f = DataFrame::new(
            "r",
            vec![Column::new("a", vec![1.0; 20])],
            Label::Reg(vec![0.0; 20]),
        )
        .unwrap();
        let s = stratified_subsample(&f, 0.5, 0).unwrap();
        assert_eq!(s.n_rows(), 10);
    }

    #[test]
    fn bootstrap_and_oob_partition() {
        let mut rng = StdRng::seed_from_u64(5);
        let bs = bootstrap_indices(50, 50, &mut rng);
        assert_eq!(bs.len(), 50);
        assert!(bs.iter().all(|&i| i < 50));
        let oob = oob_indices(50, &bs);
        // OOB rows are exactly those absent from the bootstrap.
        for &i in &oob {
            assert!(!bs.contains(&i));
        }
        // With n=50 draws, expect roughly 1/e ≈ 18 OOB rows; allow slack.
        assert!(oob.len() > 5 && oob.len() < 35, "oob = {}", oob.len());
    }
}
