//! Chunk persistence: the [`ColumnStore`] trait with in-memory and
//! memory-mapped on-disk backends.
//!
//! The on-disk format (`.eafc`, "E-AFE columns") is append-only:
//!
//! ```text
//! [magic "EAFC"][version u32 LE][reserved u64]          16-byte header
//! [chunk payload bytes] ...                             appended records
//! [n u64][ (offset u64, len u32, pad u32, fnv u64) ×n ] footer table
//! [table_offset u64][magic "CFAE"]                      footer trailer
//! ```
//!
//! Every `append` returns a [`ChunkTicket`] carrying the record's offset,
//! length, and FNV-1a checksum; `read_into` verifies the checksum on every
//! read, so a torn write or bit rot surfaces as [`TabularError::Io`] rather
//! than silently corrupt data. [`MmapStore::finalize`] writes the footer
//! table so a file can later be reopened with [`MmapStore::open`] and its
//! tickets recovered without re-scanning payloads.
//!
//! On Unix the read path memory-maps the file (remapping as it grows) and
//! falls back to `pread` when mapping fails; other platforms always use
//! positioned reads. The mapping is created with raw `mmap(2)` bindings —
//! the workspace vendors no libc crate, but `std` links the platform libc,
//! so the symbols resolve.

use crate::error::{Result, TabularError};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// FNV-1a over a byte slice; the checksum used for chunk records.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Location + integrity info for one stored chunk record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkTicket {
    /// Byte offset of the payload within the store.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u32,
    /// FNV-1a checksum of the payload.
    pub checksum: u64,
}

/// Which backend a store uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreKind {
    /// RAM-backed arena ([`InMemoryStore`]).
    Memory,
    /// Memory-mapped `.eafc` file ([`MmapStore`]).
    Mmap,
}

/// Append-only chunk persistence used by spill/evict in
/// [`ChunkedFrame`](crate::chunk::ChunkedFrame).
pub trait ColumnStore: Send + Sync + std::fmt::Debug {
    /// Persist one chunk payload, returning its ticket.
    fn append(&self, payload: &[u8]) -> Result<ChunkTicket>;

    /// Read a previously appended payload into `out` (cleared first),
    /// verifying the ticket's checksum.
    fn read_into(&self, ticket: &ChunkTicket, out: &mut Vec<u8>) -> Result<()>;

    /// Which backend this is.
    fn kind(&self) -> StoreKind;

    /// Total payload bytes appended so far.
    fn bytes_written(&self) -> u64;
}

fn checksum_mismatch(t: &ChunkTicket, got: u64) -> TabularError {
    TabularError::Io(format!(
        "chunk checksum mismatch at offset {}: expected {:#x}, got {got:#x}",
        t.offset, t.checksum
    ))
}

// ---------------------------------------------------------------------------
// In-memory backend
// ---------------------------------------------------------------------------

/// RAM-backed [`ColumnStore`]: a single growing arena. Spilling to this
/// store keeps data in process memory but in encoded (compressed) form —
/// useful for tests and for budgeted runs that fit encoded-but-not-decoded.
#[derive(Debug, Default)]
pub struct InMemoryStore {
    arena: Mutex<Vec<u8>>,
}

impl InMemoryStore {
    /// An empty in-memory store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ColumnStore for InMemoryStore {
    fn append(&self, payload: &[u8]) -> Result<ChunkTicket> {
        let mut arena = self.arena.lock().expect("store lock");
        let offset = arena.len() as u64;
        arena.extend_from_slice(payload);
        Ok(ChunkTicket {
            offset,
            len: payload.len() as u32,
            checksum: fnv1a(payload),
        })
    }

    fn read_into(&self, ticket: &ChunkTicket, out: &mut Vec<u8>) -> Result<()> {
        let arena = self.arena.lock().expect("store lock");
        let start = ticket.offset as usize;
        let end = start + ticket.len as usize;
        if end > arena.len() {
            return Err(TabularError::Io(format!(
                "chunk read past end of store: {end} > {}",
                arena.len()
            )));
        }
        out.clear();
        out.extend_from_slice(&arena[start..end]);
        let got = fnv1a(out);
        if got != ticket.checksum {
            return Err(checksum_mismatch(ticket, got));
        }
        Ok(())
    }

    fn kind(&self) -> StoreKind {
        StoreKind::Memory
    }

    fn bytes_written(&self) -> u64 {
        self.arena.lock().expect("store lock").len() as u64
    }
}

// ---------------------------------------------------------------------------
// Raw mmap bindings (Unix)
// ---------------------------------------------------------------------------

#[cfg(unix)]
mod mm {
    use std::os::raw::{c_int, c_void};

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
        fn madvise(addr: *mut c_void, len: usize, advice: c_int) -> c_int;
    }

    const PROT_READ: c_int = 1;
    const MAP_SHARED: c_int = 1;
    const MAP_FAILED: isize = -1;
    const MADV_DONTNEED: c_int = 4;

    /// Alignment granule for `release_range`. If the real page size is
    /// larger (e.g. 16K/64K arm64 kernels), the madvise call fails with
    /// EINVAL and is ignored — releasing is best-effort only.
    const PAGE: usize = 4096;

    /// A read-only shared mapping of the first `len` bytes of a file.
    /// The pointer is immutable for the mapping's lifetime, so sharing it
    /// across threads is sound.
    #[derive(Debug)]
    pub struct Map {
        ptr: *mut c_void,
        len: usize,
    }

    // SAFETY: the mapping is PROT_READ and never handed out mutably; the
    // raw pointer is only dereferenced through `as_slice`.
    unsafe impl Send for Map {}
    unsafe impl Sync for Map {}

    impl Map {
        /// Map `len` bytes of `fd` read-only; `None` if the kernel refuses.
        pub fn new(fd: c_int, len: usize) -> Option<Map> {
            if len == 0 {
                return None;
            }
            // SAFETY: a fresh PROT_READ/MAP_SHARED mapping of a file we hold
            // open; failure is reported via MAP_FAILED and handled.
            let ptr = unsafe { mmap(std::ptr::null_mut(), len, PROT_READ, MAP_SHARED, fd, 0) };
            if ptr as isize == MAP_FAILED {
                None
            } else {
                Some(Map { ptr, len })
            }
        }

        /// The mapped bytes.
        pub fn as_slice(&self) -> &[u8] {
            // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
            // bytes established in `new`.
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }

        /// Mapped length in bytes.
        pub fn len(&self) -> usize {
            self.len
        }

        /// Drop the resident pages covering `[offset, offset + len)` from
        /// this process's working set (best-effort). The pages are clean
        /// and file-backed, so a later access simply refaults them from
        /// the page cache — values never change. Without this, a spill
        /// store scanned chunk-by-chunk would accumulate the whole file
        /// in RSS, defeating the point of a resident-bytes budget.
        pub fn release_range(&self, offset: usize, len: usize) {
            if len == 0 || offset >= self.len {
                return;
            }
            let start = offset & !(PAGE - 1);
            let end = (offset + len).min(self.len);
            // SAFETY: [start, end) lies within the live mapping; DONTNEED
            // on a read-only shared file mapping only drops PTEs. Failure
            // (e.g. stricter page size) is ignored — purely advisory.
            unsafe {
                madvise(
                    (self.ptr as usize + start) as *mut c_void,
                    end - start,
                    MADV_DONTNEED,
                );
            }
        }
    }

    impl Drop for Map {
        fn drop(&mut self) {
            // SAFETY: `ptr`/`len` describe the mapping created in `new`;
            // unmap failures at drop are unrecoverable and ignored.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Mmap-backed .eafc file store
// ---------------------------------------------------------------------------

/// Magic bytes opening every `.eafc` file.
pub const EAFC_MAGIC: [u8; 4] = *b"EAFC";
/// Magic bytes closing a finalized `.eafc` file.
pub const EAFC_FOOTER_MAGIC: [u8; 4] = *b"CFAE";
/// Current `.eafc` format version.
pub const EAFC_VERSION: u32 = 1;
const HEADER_LEN: u64 = 16;

#[derive(Debug)]
struct MmapState {
    /// Bytes of the file written so far (header + payloads).
    tail: u64,
    /// Tickets for every appended record, in append order.
    tickets: Vec<ChunkTicket>,
    /// Current mapping, if the mmap path is usable.
    #[cfg(unix)]
    map: Option<mm::Map>,
    /// Whether mmap has failed before (don't keep retrying).
    mmap_broken: bool,
}

/// Memory-mapped on-disk [`ColumnStore`] over a `.eafc` file.
#[derive(Debug)]
pub struct MmapStore {
    path: PathBuf,
    file: Mutex<File>,
    state: Mutex<MmapState>,
}

impl MmapStore {
    /// Create a fresh `.eafc` file at `path`, truncating any existing file.
    pub fn create(path: impl Into<PathBuf>) -> Result<Self> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        let mut header = [0u8; HEADER_LEN as usize];
        header[..4].copy_from_slice(&EAFC_MAGIC);
        header[4..8].copy_from_slice(&EAFC_VERSION.to_le_bytes());
        file.write_all(&header)?;
        Ok(MmapStore {
            path,
            file: Mutex::new(file),
            state: Mutex::new(MmapState {
                tail: HEADER_LEN,
                tickets: Vec::new(),
                #[cfg(unix)]
                map: None,
                mmap_broken: false,
            }),
        })
    }

    /// Open a finalized `.eafc` file, recovering the ticket table from its
    /// footer. Further appends land after the payload region (the old
    /// footer is overwritten and must be rewritten via [`finalize`](Self::finalize)).
    pub fn open(path: impl Into<PathBuf>) -> Result<Self> {
        let path = path.into();
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        let file_len = file.metadata()?.len();
        let mut header = [0u8; HEADER_LEN as usize];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut header)?;
        if header[..4] != EAFC_MAGIC {
            return Err(TabularError::Io(format!(
                "{}: not an .eafc file (bad magic)",
                path.display()
            )));
        }
        let version = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if version != EAFC_VERSION {
            return Err(TabularError::Io(format!(
                "{}: unsupported .eafc version {version}",
                path.display()
            )));
        }
        // Trailer: [table_offset u64][magic "CFAE"] at the end of the file.
        if file_len < HEADER_LEN + 12 {
            return Err(TabularError::Io(format!(
                "{}: missing .eafc footer (file too short)",
                path.display()
            )));
        }
        let mut trailer = [0u8; 12];
        file.seek(SeekFrom::Start(file_len - 12))?;
        file.read_exact(&mut trailer)?;
        if trailer[8..12] != EAFC_FOOTER_MAGIC {
            return Err(TabularError::Io(format!(
                "{}: missing .eafc footer (bad trailer magic)",
                path.display()
            )));
        }
        let table_offset = u64::from_le_bytes(trailer[..8].try_into().expect("8 bytes"));
        file.seek(SeekFrom::Start(table_offset))?;
        let mut n_buf = [0u8; 8];
        file.read_exact(&mut n_buf)?;
        let n = u64::from_le_bytes(n_buf) as usize;
        let mut tickets = Vec::with_capacity(n);
        let mut rec = [0u8; 24];
        for _ in 0..n {
            file.read_exact(&mut rec)?;
            tickets.push(ChunkTicket {
                offset: u64::from_le_bytes(rec[..8].try_into().expect("8 bytes")),
                len: u32::from_le_bytes(rec[8..12].try_into().expect("4 bytes")),
                checksum: u64::from_le_bytes(rec[16..24].try_into().expect("8 bytes")),
            });
        }
        Ok(MmapStore {
            path,
            file: Mutex::new(file),
            state: Mutex::new(MmapState {
                tail: table_offset,
                tickets,
                #[cfg(unix)]
                map: None,
                mmap_broken: false,
            }),
        })
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Tickets of every record appended (or recovered) so far, in order.
    pub fn tickets(&self) -> Vec<ChunkTicket> {
        self.state.lock().expect("store lock").tickets.clone()
    }

    /// Write the footer table + trailer so the file can be reopened with
    /// [`open`](Self::open). Call after the last append.
    pub fn finalize(&self) -> Result<()> {
        let state = self.state.lock().expect("store lock");
        let mut file = self.file.lock().expect("file lock");
        let table_offset = state.tail;
        let mut footer = Vec::with_capacity(8 + state.tickets.len() * 24 + 12);
        footer.extend_from_slice(&(state.tickets.len() as u64).to_le_bytes());
        for t in &state.tickets {
            footer.extend_from_slice(&t.offset.to_le_bytes());
            footer.extend_from_slice(&t.len.to_le_bytes());
            footer.extend_from_slice(&0u32.to_le_bytes());
            footer.extend_from_slice(&t.checksum.to_le_bytes());
        }
        footer.extend_from_slice(&table_offset.to_le_bytes());
        footer.extend_from_slice(&EAFC_FOOTER_MAGIC);
        file.seek(SeekFrom::Start(table_offset))?;
        file.write_all(&footer)?;
        file.flush()?;
        Ok(())
    }

    /// Positioned read without touching shared seek state.
    fn pread(&self, offset: u64, out: &mut [u8]) -> Result<()> {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            let file = self.file.lock().expect("file lock");
            file.read_exact_at(out, offset)?;
            Ok(())
        }
        #[cfg(not(unix))]
        {
            let mut file = self.file.lock().expect("file lock");
            file.seek(SeekFrom::Start(offset))?;
            file.read_exact(out)?;
            Ok(())
        }
    }
}

impl ColumnStore for MmapStore {
    fn append(&self, payload: &[u8]) -> Result<ChunkTicket> {
        let mut state = self.state.lock().expect("store lock");
        let offset = state.tail;
        {
            let mut file = self.file.lock().expect("file lock");
            file.seek(SeekFrom::Start(offset))?;
            file.write_all(payload)?;
        }
        state.tail += payload.len() as u64;
        let ticket = ChunkTicket {
            offset,
            len: payload.len() as u32,
            checksum: fnv1a(payload),
        };
        state.tickets.push(ticket);
        Ok(ticket)
    }

    fn read_into(&self, ticket: &ChunkTicket, out: &mut Vec<u8>) -> Result<()> {
        out.clear();
        out.resize(ticket.len as usize, 0);
        let end = ticket.offset + ticket.len as u64;
        let mut used_map = false;
        #[cfg(unix)]
        {
            let mut state = self.state.lock().expect("store lock");
            if !state.mmap_broken {
                let need = state.tail as usize;
                let have = state.map.as_ref().map_or(0, |m| m.len());
                if have < end as usize {
                    use std::os::unix::io::AsRawFd;
                    // Data was written through the File; the page cache makes
                    // it visible to a fresh mapping immediately.
                    let fd = self.file.lock().expect("file lock").as_raw_fd();
                    match mm::Map::new(fd, need) {
                        Some(map) => state.map = Some(map),
                        None => {
                            state.mmap_broken = true;
                            state.map = None;
                        }
                    }
                }
                if let Some(map) = &state.map {
                    if map.len() >= end as usize {
                        out.copy_from_slice(&map.as_slice()[ticket.offset as usize..end as usize]);
                        // Reads copy out of the mapping, so the mapped pages
                        // are released immediately: resident memory stays
                        // bounded by the FrameBudget, not by how much of the
                        // spill file has been scanned.
                        map.release_range(ticket.offset as usize, ticket.len as usize);
                        used_map = true;
                    }
                }
            }
        }
        if !used_map {
            let _ = end;
            self.pread(ticket.offset, out)?;
        }
        let got = fnv1a(out);
        if got != ticket.checksum {
            return Err(checksum_mismatch(ticket, got));
        }
        Ok(())
    }

    fn kind(&self) -> StoreKind {
        StoreKind::Mmap
    }

    fn bytes_written(&self) -> u64 {
        self.state.lock().expect("store lock").tail - HEADER_LEN
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "eafc_store_test_{}_{name}.eafc",
            std::process::id()
        ));
        p
    }

    #[test]
    fn memory_store_round_trips_and_checks() {
        let store = InMemoryStore::new();
        let a = store.append(b"hello").unwrap();
        let b = store.append(b"world!").unwrap();
        assert_eq!(store.bytes_written(), 11);
        let mut buf = Vec::new();
        store.read_into(&b, &mut buf).unwrap();
        assert_eq!(buf, b"world!");
        store.read_into(&a, &mut buf).unwrap();
        assert_eq!(buf, b"hello");
        // A corrupted ticket fails the checksum.
        let bad = ChunkTicket {
            checksum: a.checksum ^ 1,
            ..a
        };
        assert!(store.read_into(&bad, &mut buf).is_err());
    }

    #[test]
    fn mmap_store_round_trips_while_growing() {
        let path = tmp("grow");
        let store = MmapStore::create(&path).unwrap();
        let mut tickets = Vec::new();
        for i in 0..20u8 {
            let payload: Vec<u8> = (0..100 + i as usize).map(|j| (j as u8) ^ i).collect();
            tickets.push((store.append(&payload).unwrap(), payload));
        }
        // Interleave reads with growth so remapping is exercised.
        let mut buf = Vec::new();
        for (t, want) in &tickets {
            store.read_into(t, &mut buf).unwrap();
            assert_eq!(&buf, want);
        }
        let more = store.append(b"tail record").unwrap();
        store.read_into(&more, &mut buf).unwrap();
        assert_eq!(buf, b"tail record");
        drop(store);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mmap_store_finalize_and_reopen_recovers_tickets() {
        let path = tmp("reopen");
        let payloads: Vec<Vec<u8>> = (0..5).map(|i| vec![i as u8; 10 + i as usize * 3]).collect();
        let tickets: Vec<ChunkTicket> = {
            let store = MmapStore::create(&path).unwrap();
            let t = payloads.iter().map(|p| store.append(p).unwrap()).collect();
            store.finalize().unwrap();
            t
        };
        let store = MmapStore::open(&path).unwrap();
        assert_eq!(store.tickets(), tickets);
        let mut buf = Vec::new();
        for (t, want) in tickets.iter().zip(&payloads) {
            store.read_into(t, &mut buf).unwrap();
            assert_eq!(&buf, want);
        }
        // Appending after reopen still works, and re-finalizing restores
        // the footer past the new record.
        let extra = store.append(b"extra").unwrap();
        store.finalize().unwrap();
        drop(store);
        let store = MmapStore::open(&path).unwrap();
        assert_eq!(store.tickets().len(), 6);
        store.read_into(&extra, &mut buf).unwrap();
        assert_eq!(buf, b"extra");
        drop(store);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_rejects_non_eafc_files() {
        let path = tmp("bad");
        std::fs::write(&path, b"definitely not an eafc file").unwrap();
        assert!(MmapStore::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
