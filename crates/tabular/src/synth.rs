//! Synthetic dataset generation with *planted operator compositions*.
//!
//! The paper evaluates on 36 OpenML/UCI datasets and pre-trains its FPE model
//! on 239 public datasets. Those datasets are not redistributable here, so we
//! generate synthetic stand-ins whose labels depend on hidden compositions of
//! the very operator set E-AFE searches over (log, sqrt, reciprocal, min-max,
//! +, −, ×, ÷, mod). This preserves the property the experiments rely on:
//! automated feature engineering can genuinely discover features that improve
//! the downstream score, some generated features are useful and many are not,
//! and a pre-evaluation classifier has real signal to learn.
//!
//! Generation is fully deterministic given a [`SynthSpec`] (including seed).

use crate::chunk::{ChunkEncoding, ChunkOptions, ChunkedFrame};
use crate::column::Column;
use crate::error::{Result, TabularError};
use crate::frame::{DataFrame, Label, Task};
use crate::store::ColumnStore;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, LogNormal, Normal, Uniform};
use serde::{Deserialize, Serialize};

/// Specification of a synthetic dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthSpec {
    /// Dataset name.
    pub name: String,
    /// Number of rows.
    pub n_samples: usize,
    /// Number of visible feature columns.
    pub n_features: usize,
    /// Task type.
    pub task: Task,
    /// Number of classes (ignored for regression; min 2 for classification).
    pub n_classes: usize,
    /// Fraction of features carrying signal (the rest are distractors).
    pub informative_fraction: f64,
    /// Standard deviation of additive label noise, relative to signal std.
    pub noise: f64,
    /// Maximum composition depth of the planted terms (1..=3 is realistic).
    pub composition_depth: usize,
    /// RNG seed; two specs differing only in seed give different datasets.
    pub seed: u64,
}

impl SynthSpec {
    /// A reasonable default spec: binary classification, 30% distractors,
    /// mild noise, depth-2 planted compositions.
    pub fn new(name: impl Into<String>, n_samples: usize, n_features: usize, task: Task) -> Self {
        Self {
            name: name.into(),
            n_samples,
            n_features,
            task,
            n_classes: 2,
            informative_fraction: 0.7,
            noise: 0.2,
            composition_depth: 2,
            seed: 0x5eed,
        }
    }

    /// Builder: set the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: set the class count.
    pub fn with_classes(mut self, n_classes: usize) -> Self {
        self.n_classes = n_classes;
        self
    }

    /// Builder: set the noise level.
    pub fn with_noise(mut self, noise: f64) -> Self {
        self.noise = noise;
        self
    }

    /// Builder: set composition depth of planted terms.
    pub fn with_depth(mut self, depth: usize) -> Self {
        self.composition_depth = depth;
        self
    }

    /// Generate the dataset.
    pub fn generate(&self) -> Result<DataFrame> {
        generate(self)
    }

    /// Generate the dataset chunk-at-a-time, emitting encoded chunks
    /// directly to `store` under the given chunk options, so the feature
    /// matrix never materializes in RAM (peak feature memory is one
    /// chunk-row stripe plus whatever the budget keeps resident).
    ///
    /// Deterministic for a given `(spec, chunk_rows)`: every `(column,
    /// chunk)` pair draws from its own seed-derived RNG stream, so output
    /// is independent of generation order but *does* depend on the chunk
    /// size. The streamed dataset is therefore a sibling of
    /// [`generate`](Self::generate)'s (same marginals, planted terms, and
    /// label construction), not a bit-copy of it.
    pub fn generate_chunked(
        &self,
        opts: ChunkOptions,
        store: Box<dyn ColumnStore>,
    ) -> Result<ChunkedFrame> {
        generate_chunked(self, opts, store)
    }
}

/// The unary primitives used in planted compositions. These mirror the
/// E-AFE operator set so the search space contains the ground truth.
fn unary(which: usize, x: f64) -> f64 {
    match which % 4 {
        0 => (x.abs() + 1.0).ln(),
        1 => x.abs().sqrt(),
        2 => 1.0 / (x.abs() + 1.0),
        _ => x, // identity stands in for min-max (an affine map)
    }
}

/// The binary primitives used in planted compositions.
fn binary(which: usize, a: f64, b: f64) -> f64 {
    match which % 5 {
        0 => a + b,
        1 => a - b,
        2 => a * b,
        3 => a / (b.abs() + 1.0),
        _ => {
            let m = b.abs() + 1.0;
            a - m * (a / m).floor()
        }
    }
}

/// One planted term: a composition tree over informative base columns,
/// described by flat op choices so it is cheap to evaluate per row.
#[derive(Debug, Clone)]
struct PlantedTerm {
    cols: Vec<usize>,
    unary_ops: Vec<usize>,
    binary_ops: Vec<usize>,
    weight: f64,
}

impl PlantedTerm {
    fn eval(&self, row: &[f64]) -> f64 {
        // Fold the chosen columns left-to-right through unary+binary ops.
        let mut acc = unary(self.unary_ops[0], row[self.cols[0]]);
        for k in 1..self.cols.len() {
            let operand = unary(self.unary_ops[k], row[self.cols[k]]);
            acc = binary(self.binary_ops[k - 1], acc, operand);
        }
        if acc.is_finite() {
            acc
        } else {
            0.0
        }
    }
}

/// The marginal distributions columns are drawn from, shared by the in-RAM
/// and streaming generators.
struct Marginals {
    normal: Normal,
    lognormal: LogNormal,
    uniform: Uniform,
}

impl Marginals {
    fn new() -> Self {
        Marginals {
            normal: Normal::new(0.0, 1.0).expect("valid normal"),
            lognormal: LogNormal::new(0.0, 0.5).expect("valid lognormal"),
            uniform: Uniform::new(-1.0f64, 1.0),
        }
    }

    fn sample(&self, kind: u8, scale: f64, rng: &mut StdRng) -> f64 {
        match kind {
            0 => self.normal.sample(rng) * scale,
            1 => self.lognormal.sample(rng) * scale,
            2 => self.uniform.sample(rng) * scale,
            // integer-ish encoded categorical
            _ => rng.gen_range(0..8) as f64,
        }
    }
}

fn validate(spec: &SynthSpec) -> Result<usize> {
    if spec.n_samples == 0 || spec.n_features == 0 {
        return Err(TabularError::Empty(format!(
            "synthetic dataset `{}` must have rows and columns",
            spec.name
        )));
    }
    if spec.task == Task::Classification && spec.n_classes < 2 {
        return Err(TabularError::InvalidParam(
            "classification requires at least 2 classes".into(),
        ));
    }
    if !(0.0..=1.0).contains(&spec.informative_fraction) {
        return Err(TabularError::InvalidParam(
            "informative_fraction must be in [0,1]".into(),
        ));
    }
    Ok(spec.composition_depth.clamp(1, 4))
}

/// Choose informative columns and plant composition terms. Draw order is
/// part of the determinism contract for [`SynthSpec::generate`].
fn plant_terms(spec: &SynthSpec, depth: usize, rng: &mut StdRng) -> Vec<PlantedTerm> {
    let n_informative = ((spec.n_features as f64 * spec.informative_fraction).round() as usize)
        .clamp(1, spec.n_features);
    let n_terms = (n_informative / 2).clamp(1, 8);
    let mut terms = Vec::with_capacity(n_terms + n_informative.min(4));
    for _ in 0..n_terms {
        let arity = rng.gen_range(1..=depth.max(1));
        let cols: Vec<usize> = (0..=arity)
            .map(|_| rng.gen_range(0..n_informative))
            .collect();
        let unary_ops: Vec<usize> = (0..cols.len()).map(|_| rng.gen_range(0..5)).collect();
        let binary_ops: Vec<usize> = (0..cols.len().saturating_sub(1))
            .map(|_| rng.gen_range(0..5))
            .collect();
        terms.push(PlantedTerm {
            cols,
            unary_ops,
            binary_ops,
            weight: rng.gen_range(0.5..2.0) * if rng.gen_bool(0.5) { 1.0 } else { -1.0 },
        });
    }
    // A few direct linear terms so the *raw* features already carry signal
    // (baselines must score above chance, as in the paper's Table III).
    for j in 0..n_informative.min(4) {
        terms.push(PlantedTerm {
            cols: vec![j],
            unary_ops: vec![3], // identity
            binary_ops: vec![],
            weight: rng.gen_range(0.5..1.5),
        });
    }
    terms
}

/// Turn the latent signal into the task's label vector.
fn labels_from_z(spec: &SynthSpec, z: Vec<f64>) -> Label {
    match spec.task {
        Task::Regression => Label::Reg(z),
        Task::Classification => {
            let cuts = quantile_cuts(&z, spec.n_classes);
            let y: Vec<usize> = z
                .iter()
                .map(|&v| cuts.iter().take_while(|&&c| v > c).count())
                .collect();
            Label::Class {
                y,
                n_classes: spec.n_classes,
            }
        }
    }
}

fn generate(spec: &SynthSpec) -> Result<DataFrame> {
    let depth = validate(spec)?;
    let mut rng = StdRng::seed_from_u64(spec.seed ^ hash_name(&spec.name));

    // --- base feature matrix, column-major, mixed marginal distributions ---
    let marginals = Marginals::new();
    let mut columns: Vec<Column> = Vec::with_capacity(spec.n_features);
    for j in 0..spec.n_features {
        let kind = rng.gen_range(0..4u8);
        let scale = 10f64.powi(rng.gen_range(-1..2));
        let values: Vec<f64> = (0..spec.n_samples)
            .map(|_| marginals.sample(kind, scale, &mut rng))
            .collect();
        columns.push(Column::new(format!("f{j}"), values));
    }

    let terms = plant_terms(spec, depth, &mut rng);

    // --- latent signal z per row ---
    let mut z = vec![0.0f64; spec.n_samples];
    let row_buf: Vec<&[f64]> = columns.iter().map(|c| c.values.as_slice()).collect();
    let mut row = vec![0.0f64; spec.n_features];
    for (i, zi) in z.iter_mut().enumerate() {
        for (j, col) in row_buf.iter().enumerate() {
            row[j] = col[i];
        }
        // Standardise each term's contribution scale via tanh squashing so a
        // single heavy-tailed term cannot dominate the label.
        *zi = terms
            .iter()
            .map(|t| t.weight * (t.eval(&row) / 3.0).tanh())
            .sum();
    }

    // --- additive noise, relative to signal spread ---
    let z_std = std_of(&z).max(1e-9);
    if spec.noise > 0.0 {
        let noise = Normal::new(0.0, spec.noise * z_std).expect("valid noise");
        for zi in z.iter_mut() {
            *zi += noise.sample(&mut rng);
        }
    }

    DataFrame::new(spec.name.clone(), columns, labels_from_z(spec, z))
}

/// SplitMix64-style finalizer deriving one independent stream seed per
/// `(column, chunk)` pair for the streaming generator.
fn derive_stream_seed(base: u64, col: u64, chunk: u64) -> u64 {
    let mut x =
        base ^ col.wrapping_mul(0x9E3779B97F4A7C15) ^ chunk.wrapping_mul(0xD1B54A32D192ED03);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58476D1CE4E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

fn generate_chunked(
    spec: &SynthSpec,
    opts: ChunkOptions,
    store: Box<dyn ColumnStore>,
) -> Result<ChunkedFrame> {
    let depth = validate(spec)?;
    let base_seed = spec.seed ^ hash_name(&spec.name);
    // Meta draws (column marginals, planted terms) come from one stream;
    // per-(column, chunk) value draws each get their own derived stream so
    // a chunk's contents are independent of generation order.
    let mut meta_rng = StdRng::seed_from_u64(base_seed ^ 0x73747265616d); // "stream"
    let marginals = Marginals::new();
    let kinds_scales: Vec<(u8, f64)> = (0..spec.n_features)
        .map(|_| {
            let kind = meta_rng.gen_range(0..4u8);
            let scale = 10f64.powi(meta_rng.gen_range(-1..2));
            (kind, scale)
        })
        .collect();
    let terms = plant_terms(spec, depth, &mut meta_rng);

    let mut cf = ChunkedFrame::new_streaming(spec.name.clone(), spec.n_samples, opts, store);
    for j in 0..spec.n_features {
        cf.begin_column(format!("f{j}"));
    }

    // --- stripe sweep: one chunk-row stripe of all columns at a time ---
    let chunk_rows = cf.chunk_rows();
    let n_chunks = spec.n_samples.div_ceil(chunk_rows);
    let mut stripe: Vec<Vec<f64>> = vec![Vec::with_capacity(chunk_rows); spec.n_features];
    let mut z: Vec<f64> = Vec::with_capacity(spec.n_samples);
    let mut row = vec![0.0f64; spec.n_features];
    for k in 0..n_chunks {
        let rows = chunk_rows.min(spec.n_samples - k * chunk_rows);
        for (j, buf) in stripe.iter_mut().enumerate() {
            let (kind, scale) = kinds_scales[j];
            let mut crng = StdRng::seed_from_u64(derive_stream_seed(base_seed, j as u64, k as u64));
            buf.clear();
            buf.extend((0..rows).map(|_| marginals.sample(kind, scale, &mut crng)));
        }
        for i in 0..rows {
            for (j, buf) in stripe.iter().enumerate() {
                row[j] = buf[i];
            }
            z.push(
                terms
                    .iter()
                    .map(|t| t.weight * (t.eval(&row) / 3.0).tanh())
                    .sum(),
            );
        }
        for (j, buf) in stripe.iter().enumerate() {
            cf.append_chunk(j, ChunkEncoding::encode(buf))?;
        }
    }

    // --- additive noise, relative to signal spread (own derived stream) ---
    let z_std = std_of(&z).max(1e-9);
    if spec.noise > 0.0 {
        let mut noise_rng = StdRng::seed_from_u64(base_seed ^ 0x6e6f697365); // "noise"
        let noise = Normal::new(0.0, spec.noise * z_std).expect("valid noise");
        for zi in z.iter_mut() {
            *zi += noise.sample(&mut noise_rng);
        }
    }

    cf.set_label(labels_from_z(spec, z))?;
    Ok(cf)
}

/// Quantile cut points splitting values into `k` roughly equal classes.
fn quantile_cuts(values: &[f64], k: usize) -> Vec<f64> {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite signal"));
    (1..k)
        .map(|q| {
            let idx = (q * sorted.len()) / k;
            sorted[idx.min(sorted.len() - 1)]
        })
        .collect()
}

fn std_of(v: &[f64]) -> f64 {
    if v.len() < 2 {
        return 0.0;
    }
    let m = v.iter().sum::<f64>() / v.len() as f64;
    (v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64).sqrt()
}

/// Stable FNV-1a hash of the dataset name, mixed into the seed so that two
/// same-shaped datasets with different names differ.
fn hash_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let f = SynthSpec::new("s", 200, 12, Task::Classification)
            .generate()
            .unwrap();
        assert_eq!(f.n_rows(), 200);
        assert_eq!(f.n_cols(), 12);
        assert_eq!(f.task(), Task::Classification);
    }

    #[test]
    fn deterministic_per_spec() {
        let spec = SynthSpec::new("d", 100, 6, Task::Regression).with_seed(9);
        let a = spec.generate().unwrap();
        let b = spec.generate().unwrap();
        assert_eq!(a, b);
        let c = spec.with_seed(10).generate().unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn different_names_differ() {
        let a = SynthSpec::new("x", 50, 5, Task::Regression)
            .generate()
            .unwrap();
        let b = SynthSpec::new("y", 50, 5, Task::Regression)
            .generate()
            .unwrap();
        assert_ne!(a.columns()[0].values, b.columns()[0].values);
    }

    #[test]
    fn all_values_finite() {
        let f = SynthSpec::new("fin", 500, 20, Task::Regression)
            .with_depth(4)
            .generate()
            .unwrap();
        for c in f.columns() {
            assert!(c.is_finite(), "column {} has non-finite values", c.name);
        }
        assert!(f.label().targets().unwrap().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn classification_classes_are_balanced_and_in_range() {
        let f = SynthSpec::new("cls", 600, 10, Task::Classification)
            .with_classes(3)
            .generate()
            .unwrap();
        let y = f.label().classes().unwrap();
        let mut counts = [0usize; 3];
        for &c in y {
            assert!(c < 3);
            counts[c] += 1;
        }
        for &c in &counts {
            // Quantile cuts give near-balanced classes.
            assert!(c > 100, "class counts {counts:?}");
        }
    }

    #[test]
    fn rejects_degenerate_specs() {
        assert!(SynthSpec::new("e", 0, 5, Task::Regression)
            .generate()
            .is_err());
        assert!(SynthSpec::new("e", 5, 0, Task::Regression)
            .generate()
            .is_err());
        assert!(SynthSpec::new("e", 5, 5, Task::Classification)
            .with_classes(1)
            .generate()
            .is_err());
    }

    #[test]
    fn chunked_generation_is_deterministic_and_well_shaped() {
        use crate::budget::FrameBudget;
        use crate::store::InMemoryStore;
        let spec = SynthSpec::new("stream", 5_000, 6, Task::Classification).with_seed(42);
        let opts = ChunkOptions::default()
            .with_chunk_rows(512)
            .with_budget(FrameBudget::from_bytes(24 * 1024));
        let a = spec
            .generate_chunked(opts, Box::new(InMemoryStore::new()))
            .unwrap();
        let b = spec
            .generate_chunked(opts, Box::new(InMemoryStore::new()))
            .unwrap();
        assert_eq!(a.n_rows(), 5_000);
        assert_eq!(a.n_cols(), 6);
        assert_eq!(a.task(), Task::Classification);
        assert!(
            a.stats().chunks_spilled > 0,
            "tight budget should spill during generation"
        );
        let da = a.to_dataframe().unwrap();
        let db = b.to_dataframe().unwrap();
        assert_eq!(da, db);
        for c in da.columns() {
            assert!(c.is_finite());
        }
        // A different seed gives different data.
        let c = spec
            .clone()
            .with_seed(43)
            .generate_chunked(opts, Box::new(InMemoryStore::new()))
            .unwrap()
            .to_dataframe()
            .unwrap();
        assert_ne!(da, c);
    }

    #[test]
    fn raw_features_correlate_with_regression_target() {
        // The direct linear planted terms guarantee raw-feature signal.
        let f = SynthSpec::new("sig", 2000, 8, Task::Regression)
            .with_noise(0.1)
            .generate()
            .unwrap();
        let y = Column::new("y", f.label().targets().unwrap().to_vec());
        let best = f
            .columns()
            .iter()
            .map(|c| c.correlation(&y).abs())
            .fold(0.0f64, f64::max);
        assert!(best > 0.15, "max |corr| = {best}");
    }
}
