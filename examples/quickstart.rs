//! Quickstart: run E-AFE end-to-end on a small synthetic classification
//! dataset and print what it found.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use eafe::{bootstrap_fpe, EafeConfig, Engine, FpeSearchSpace};
use minhash::HashFamily;
use tabular::{SynthSpec, Task};

fn main() {
    // 1. A target dataset. Real use: load your numeric table via
    //    `tabular::csv::read_csv` — here we generate a synthetic one whose
    //    label depends on hidden operator compositions, so feature
    //    engineering has something real to discover.
    let frame = SynthSpec::new("quickstart", 240, 6, Task::Classification)
        .with_depth(3)
        .with_noise(0.35)
        .with_seed(44)
        .generate()
        .expect("generate dataset");
    println!(
        "dataset: {} rows x {} features ({})",
        frame.n_rows(),
        frame.n_cols(),
        frame.task().code()
    );

    // 2. Pre-train the Feature Pre-Evaluation model on a public corpus.
    //    This is done once and is reusable across target datasets (the
    //    paper pre-trains on 239 OpenML datasets; see also
    //    `examples/fpe_pretraining.rs` for persisting/reloading).
    let config = EafeConfig {
        stage1_epochs: 4,
        stage2_epochs: 8,
        steps_per_epoch: 3,
        ..EafeConfig::default()
    };
    let space = FpeSearchSpace {
        families: vec![HashFamily::Ccws],
        dims: vec![48],
        thre: config.thre,
        seed: 7,
    };
    println!("pre-training FPE model (one-time cost)...");
    let fpe = bootstrap_fpe(8, 4, &space, &config.evaluator, 7).expect("FPE bootstrap");
    println!(
        "FPE ready: recall {:.2}, precision {:.2}, positive rate {:.2}",
        fpe.metrics.recall, fpe.metrics.precision, fpe.metrics.positive_rate
    );

    // 3. Run E-AFE.
    println!("running E-AFE (stage 1: FPE surrogate, stage 2: downstream RF)...");
    let result = Engine::e_afe(config, fpe).run(&frame).expect("E-AFE run");

    // 4. Inspect the outcome.
    println!();
    println!(
        "base score (raw features, 5-fold RF CV F1): {:.4}",
        result.base_score
    );
    println!(
        "best score (engineered features):           {:.4}",
        result.best_score
    );
    println!(
        "improvement:                                {:+.4}",
        result.improvement()
    );
    println!(
        "generated {} candidate features, evaluated {} on the downstream task \
         (drop rate {:.0}%)",
        result.generated_features,
        result.downstream_evals,
        100.0 * (1.0 - result.downstream_evals as f64 / result.generated_features.max(1) as f64)
    );
    println!(
        "time: generation {:.2}s, evaluation {:.2}s, total {:.2}s (eval share {:.0}%)",
        result.generation_secs,
        result.eval_secs,
        result.total_secs,
        result.eval_time_fraction() * 100.0
    );
    println!("selected generated features:");
    for name in &result.selected {
        println!("  {name}");
    }
}
