//! Credit scoring scenario: the German-Credit-shaped workload from the
//! paper's Table III, comparing raw features, NFS, and E-AFE — the kind of
//! tabular risk-model feature engineering the paper's introduction
//! motivates for "large-scale big data systems".
//!
//! ```sh
//! cargo run --release --example credit_scoring
//! ```

use eafe::{bootstrap_fpe, preselect_features, EafeConfig, Engine, FpeSearchSpace};
use minhash::HashFamily;
use tabular::find_dataset;

fn main() {
    // The registry generates a synthetic stand-in with German Credit's
    // shape (1001 samples, 24 features; see DESIGN.md §2 on substitution).
    let info = find_dataset("German Credit").expect("registered dataset");
    let raw = info.load_scaled(0.5).expect("generate dataset");
    // The paper pre-selects features by RF importance before AFE.
    let frame = preselect_features(&raw, 16, 0).expect("pre-select");
    println!(
        "credit dataset: {} rows x {} features (pre-selected from {})",
        frame.n_rows(),
        frame.n_cols(),
        raw.n_cols()
    );

    let config = EafeConfig {
        stage1_epochs: 4,
        stage2_epochs: 8,
        steps_per_epoch: 3,
        ..EafeConfig::default()
    };
    let space = FpeSearchSpace {
        families: vec![HashFamily::Ccws],
        dims: vec![48],
        thre: config.thre,
        seed: 11,
    };
    println!("pre-training FPE model...");
    let fpe = bootstrap_fpe(8, 4, &space, &config.evaluator, 11).expect("FPE");

    println!("running NFS (evaluates every generated feature)...");
    let nfs = Engine::nfs(config.clone()).run(&frame).expect("NFS");
    println!("running E-AFE (FPE-gated, two-stage)...");
    let eafe = Engine::e_afe(config, fpe).run(&frame).expect("E-AFE");

    println!();
    println!(
        "{:<22} {:>8} {:>8} {:>10} {:>9}",
        "method", "F1", "evals", "total(s)", "eval(s)"
    );
    for r in [&nfs, &eafe] {
        println!(
            "{:<22} {:>8.4} {:>8} {:>10.2} {:>9.2}",
            r.method, r.best_score, r.downstream_evals, r.total_secs, r.eval_secs
        );
    }
    println!();
    println!(
        "E-AFE used {:.0}% of NFS's downstream evaluations and {:.0}% of its wall time.",
        100.0 * eafe.downstream_evals as f64 / nfs.downstream_evals.max(1) as f64,
        100.0 * eafe.total_secs / nfs.total_secs.max(1e-9)
    );
    let delta = eafe.best_score - nfs.best_score;
    println!("score difference (E-AFE − NFS): {delta:+.4}");
}
