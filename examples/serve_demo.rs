//! Feature engineering as a service: two tenants share one `JobServer` —
//! one worker pool, one content-addressed score cache — with different
//! budgets. Their progress streams interleave (the scheduler slices
//! round-robin at epoch granularity) and each tenant gets the best
//! weighted feature set its budget could buy.
//!
//! ```sh
//! cargo run --release --example serve_demo
//! ```
//!
//! Observability flags:
//!
//! ```text
//! --status [ADDR]     start the introspection endpoint (default
//!                     127.0.0.1:0) and self-scrape /metrics + /status
//!                     when the run finishes
//! --trace-out <PATH>  stream telemetry events to a JSON-lines file —
//!                     feed it to `trace_tool` for flamegraphs and
//!                     critical-path / attribution reports
//! --quiet             suppress the per-epoch progress lines
//! ```

use serve::{Budget, JobEvent, JobServer, ServerConfig};
use std::sync::mpsc;
use std::sync::Arc;
use tabular::{SynthSpec, Task};

fn main() {
    // ----- flags ---------------------------------------------------------
    let mut status: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut quiet = false;
    let mut args = std::env::args().skip(1).peekable();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--status" => {
                let addr = args.peek().filter(|v| !v.starts_with("--")).cloned();
                if addr.is_some() {
                    args.next();
                }
                status = Some(addr.unwrap_or_else(|| "127.0.0.1:0".to_string()));
            }
            "--trace-out" => {
                trace_out = Some(args.next().expect("--trace-out needs a path"));
            }
            "--quiet" => quiet = true,
            other => panic!("unknown flag `{other}` (see the doc comment)"),
        }
    }
    if let Some(path) = &trace_out {
        let sink = telemetry::JsonLinesSink::create(std::path::Path::new(path))
            .unwrap_or_else(|e| panic!("open {path}: {e}"));
        telemetry::install(Arc::new(sink));
    }

    // One server per process: it owns the shared compute substrate that
    // all tenants' searches draw from.
    let server = JobServer::new(ServerConfig {
        status_addr: status.clone(),
        ..ServerConfig::default()
    })
    .expect("start server");
    if let Some(addr) = server.status_addr() {
        println!("status endpoint live at http://{addr} (/metrics, /status)\n");
    }

    // Two tenants, two datasets, two very different budgets.
    let retail = SynthSpec::new("retail-churn", 240, 6, Task::Classification)
        .with_depth(3)
        .with_noise(0.35)
        .with_seed(44)
        .generate()
        .expect("generate retail dataset");
    let telco = SynthSpec::new("telco-upsell", 200, 5, Task::Classification)
        .with_depth(2)
        .with_noise(0.25)
        .with_seed(45)
        .generate()
        .expect("generate telco dataset");

    let config = eafe::EafeConfig {
        stage1_epochs: 2,
        stage2_epochs: 8,
        steps_per_epoch: 3,
        ..eafe::EafeConfig::fast()
    };

    // Tenant A pays for a full run; tenant B gets an interactive
    // four-epoch budget — anytime semantics mean B still walks away with
    // the best feature set found inside it.
    let job_a = server
        .submit(
            "tenant-a",
            &retail,
            eafe::Engine::nfs(config.clone()),
            Budget::unlimited(),
        )
        .expect("submit tenant-a");
    let job_b = server
        .submit(
            "tenant-b",
            &telco,
            eafe::Engine::nfs(config),
            Budget::epochs(4),
        )
        .expect("submit tenant-b");
    println!(
        "submitted {} (retail-churn, unlimited) and {} (telco-upsell, 4 epochs)\n",
        job_a.id(),
        job_b.id()
    );

    // Merge both live progress streams onto one channel so the printout
    // shows the scheduler's actual interleaving. Handles are `Send`:
    // each tenant's follower thread takes ownership of its handle.
    let (tx, rx) = mpsc::channel();
    for job in [job_a, job_b] {
        let tx = tx.clone();
        std::thread::spawn(move || {
            while let Some(event) = job.next_event() {
                tx.send((job.id(), job.tenant().to_string(), event))
                    .unwrap();
            }
        });
    }
    drop(tx);
    let mut outcomes = Vec::new();
    while outcomes.len() < 2 {
        let (id, tenant, event) = rx.recv().expect("stream open");
        match event {
            JobEvent::Epoch(r) => {
                if !quiet {
                    println!(
                        "{id} [{tenant:>8}] epoch {:>2}  best {:.4} ({:+.4})  {} features",
                        r.epochs_completed,
                        r.best_score,
                        r.best_score - r.base_score,
                        r.best_features.len(),
                    )
                }
            }
            JobEvent::Done(outcome) => {
                println!("{id} [{tenant:>8}] done: {:?}", outcome.status);
                outcomes.push(outcome);
            }
        }
    }

    outcomes.sort_by_key(|o| o.id.0);
    for outcome in &outcomes {
        let result = outcome.result.as_ref().expect("terminal result");
        println!(
            "\n{} [{}] {:?} after {} epochs: {:.4} -> {:.4}",
            outcome.id,
            outcome.tenant,
            outcome.status,
            outcome.epochs,
            result.base_score,
            result.best_score
        );
        println!("  weighted feature set (weight = downstream gain at acceptance):");
        if result.selected.is_empty() {
            println!("    (no generated feature beat the raw dataset)");
        }
        for name in &result.selected {
            println!("    {name}");
        }
        if let Some(frame) = &outcome.engineered {
            println!(
                "  engineered frame: {} rows x {} cols",
                frame.n_rows(),
                frame.n_cols()
            );
        }
    }

    // Self-scrape: show what an operator's Prometheus scrape and status
    // poll would see for this run.
    if let Some(addr) = server.status_addr() {
        let metrics = serve::scrape(addr, "/metrics").expect("scrape /metrics");
        println!("\n== /metrics (per-tenant excerpt) ==");
        for line in metrics.lines().filter(|l| {
            l.starts_with("serve_epochs")
                || l.starts_with("serve_evals")
                || (l.starts_with("serve_epoch_us") && l.contains("quantile"))
        }) {
            println!("{line}");
        }
        let status_page = serve::scrape(addr, "/status").expect("scrape /status");
        println!("\n== /status ==\n{status_page}");
    }
    if let Some(path) = &trace_out {
        // Append counter totals so the trace is self-contained for
        // trace_tool's cache-efficiency report.
        for (name, value) in &telemetry::global().snapshot().counters {
            telemetry::emit(&telemetry::Event::Count(telemetry::CountEvent {
                name: name.clone(),
                value: *value,
            }));
        }
        telemetry::flush();
        telemetry::uninstall();
        println!("\ntrace written to {path}; analyse it with:");
        println!("  cargo run --release -p bench --bin trace_tool -- {path}");
    }
}
