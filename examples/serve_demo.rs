//! Feature engineering as a service: two tenants share one `JobServer` —
//! one worker pool, one content-addressed score cache — with different
//! budgets. Their progress streams interleave (the scheduler slices
//! round-robin at epoch granularity) and each tenant gets the best
//! weighted feature set its budget could buy.
//!
//! ```sh
//! cargo run --release --example serve_demo
//! ```

use serve::{Budget, JobEvent, JobServer, ServerConfig};
use std::sync::mpsc;
use tabular::{SynthSpec, Task};

fn main() {
    // One server per process: it owns the shared compute substrate that
    // all tenants' searches draw from.
    let server = JobServer::new(ServerConfig::default()).expect("start server");

    // Two tenants, two datasets, two very different budgets.
    let retail = SynthSpec::new("retail-churn", 240, 6, Task::Classification)
        .with_depth(3)
        .with_noise(0.35)
        .with_seed(44)
        .generate()
        .expect("generate retail dataset");
    let telco = SynthSpec::new("telco-upsell", 200, 5, Task::Classification)
        .with_depth(2)
        .with_noise(0.25)
        .with_seed(45)
        .generate()
        .expect("generate telco dataset");

    let config = eafe::EafeConfig {
        stage1_epochs: 2,
        stage2_epochs: 8,
        steps_per_epoch: 3,
        ..eafe::EafeConfig::fast()
    };

    // Tenant A pays for a full run; tenant B gets an interactive
    // four-epoch budget — anytime semantics mean B still walks away with
    // the best feature set found inside it.
    let job_a = server
        .submit(
            "tenant-a",
            &retail,
            eafe::Engine::nfs(config.clone()),
            Budget::unlimited(),
        )
        .expect("submit tenant-a");
    let job_b = server
        .submit(
            "tenant-b",
            &telco,
            eafe::Engine::nfs(config),
            Budget::epochs(4),
        )
        .expect("submit tenant-b");
    println!(
        "submitted {} (retail-churn, unlimited) and {} (telco-upsell, 4 epochs)\n",
        job_a.id(),
        job_b.id()
    );

    // Merge both live progress streams onto one channel so the printout
    // shows the scheduler's actual interleaving. Handles are `Send`:
    // each tenant's follower thread takes ownership of its handle.
    let (tx, rx) = mpsc::channel();
    for job in [job_a, job_b] {
        let tx = tx.clone();
        std::thread::spawn(move || {
            while let Some(event) = job.next_event() {
                tx.send((job.id(), job.tenant().to_string(), event))
                    .unwrap();
            }
        });
    }
    drop(tx);
    let mut outcomes = Vec::new();
    while outcomes.len() < 2 {
        let (id, tenant, event) = rx.recv().expect("stream open");
        match event {
            JobEvent::Epoch(r) => println!(
                "{id} [{tenant:>8}] epoch {:>2}  best {:.4} ({:+.4})  {} features",
                r.epochs_completed,
                r.best_score,
                r.best_score - r.base_score,
                r.best_features.len(),
            ),
            JobEvent::Done(outcome) => {
                println!("{id} [{tenant:>8}] done: {:?}", outcome.status);
                outcomes.push(outcome);
            }
        }
    }

    outcomes.sort_by_key(|o| o.id.0);
    for outcome in &outcomes {
        let result = outcome.result.as_ref().expect("terminal result");
        println!(
            "\n{} [{}] {:?} after {} epochs: {:.4} -> {:.4}",
            outcome.id,
            outcome.tenant,
            outcome.status,
            outcome.epochs,
            result.base_score,
            result.best_score
        );
        println!("  weighted feature set (weight = downstream gain at acceptance):");
        if result.selected.is_empty() {
            println!("    (no generated feature beat the raw dataset)");
        }
        for name in &result.selected {
            println!("    {name}");
        }
        if let Some(frame) = &outcome.engineered {
            println!(
                "  engineered frame: {} rows x {} cols",
                frame.n_rows(),
                frame.n_cols()
            );
        }
    }
}
