//! Regression scenario: the Bikeshare-DC-shaped workload from Table III,
//! scored with the paper's regression metric 1-RAE (1 − relative absolute
//! error). Demonstrates that the same pipeline serves both task types and
//! shows the cached features re-scored with alternative downstream models
//! (the paper's Table V robustness check).
//!
//! ```sh
//! cargo run --release --example bikeshare_regression
//! ```

use eafe::{bootstrap_fpe, reevaluate, EafeConfig, Engine, FpeSearchSpace};
use learners::ModelKind;
use minhash::HashFamily;
use tabular::find_dataset;

fn main() {
    let info = find_dataset("Bikeshare DC").expect("registered dataset");
    // 10886 rows in the paper; a 10% slice keeps the example snappy.
    let frame = info.load_scaled(0.1).expect("generate dataset");
    println!(
        "bikeshare dataset: {} rows x {} features (regression, metric: 1-RAE)",
        frame.n_rows(),
        frame.n_cols()
    );

    let config = EafeConfig {
        stage1_epochs: 3,
        stage2_epochs: 6,
        steps_per_epoch: 3,
        ..EafeConfig::default()
    };
    let space = FpeSearchSpace {
        families: vec![HashFamily::Ccws],
        dims: vec![48],
        thre: config.thre,
        seed: 13,
    };
    println!("pre-training FPE model...");
    let fpe = bootstrap_fpe(6, 6, &space, &config.evaluator, 13).expect("FPE");

    println!("running E-AFE...");
    let (result, engineered) = Engine::e_afe(config.clone(), fpe)
        .run_full(&frame)
        .expect("E-AFE");

    println!();
    println!("base 1-RAE: {:.4}", result.base_score);
    println!(
        "best 1-RAE: {:.4} ({:+.4})",
        result.best_score,
        result.improvement()
    );
    println!("selected generated features:");
    for name in &result.selected {
        println!("  {name}");
    }

    // Table V-style robustness: re-score the cached engineered features
    // with other downstream models (GP for regression under NB|GP, MLP).
    println!();
    println!("cached features under replaced downstream tasks:");
    for kind in [
        ModelKind::RandomForest,
        ModelKind::NaiveBayesGp,
        ModelKind::Mlp,
    ] {
        let score = reevaluate(&engineered, kind, &config).expect("re-evaluate");
        println!("  {:<6} 1-RAE = {score:.4}", kind.name());
    }
}
