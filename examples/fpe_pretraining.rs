//! FPE pre-training deep dive: run Algorithm 1's hyper-parameter search
//! over hash families × signature dimensions on a public corpus, inspect
//! the recall/precision landscape, persist the winning model to JSON, and
//! reload it — the "pre-train once, deploy everywhere" workflow the paper's
//! complexity analysis argues for.
//!
//! ```sh
//! cargo run --release --example fpe_pretraining
//! ```

use eafe::fpe::{search, FpeSearchSpace, RawLabels};
use eafe::FpeModel;
use learners::Evaluator;
use minhash::HashFamily;
use tabular::registry::public_corpus;

fn main() {
    // A scaled-down public corpus (the paper uses 141 classification + 98
    // regression OpenML datasets; synthetic stand-ins here — DESIGN.md §2).
    let corpus = public_corpus(12, 6, 2024).expect("corpus");
    let (train_corpus, val_corpus) = corpus.split_at(14);
    println!(
        "public corpus: {} training + {} validation datasets",
        train_corpus.len(),
        val_corpus.len()
    );

    let evaluator = Evaluator {
        folds: 3,
        ..Evaluator::default()
    };
    // Route through the shared runtime: content-addressed score caching
    // means the per-frame baselines A₀ are evaluated once across both
    // labelling passes.
    let evaluator = runtime::Evaluator::new(evaluator);
    println!("labelling features by leave-one-out + generated add-one-in gains...");
    let train = RawLabels::compute_augmented(train_corpus, &evaluator, 8, 3, 1).expect("train");
    let val = RawLabels::compute_augmented(val_corpus, &evaluator, 8, 3, 2).expect("val");
    println!(
        "labelled {} train / {} val features",
        train.len(),
        val.len()
    );

    // The Algorithm 1 sweep: 4 CWS families x 4 signature dimensions.
    let space = FpeSearchSpace {
        families: vec![
            HashFamily::Ccws,
            HashFamily::Icws,
            HashFamily::Pcws,
            HashFamily::ZeroBitCws,
        ],
        dims: vec![16, 32, 48, 64],
        thre: 0.01,
        seed: 2024,
    };
    println!("\nsearching {} compressor candidates...", 16);
    let result = search(&space, &train, &val).expect("search");

    println!(
        "\n{:<10} {:>4} {:>8} {:>10} {:>9}",
        "family", "d", "recall", "precision", "feasible"
    );
    for o in &result.outcomes {
        println!(
            "{:<10} {:>4} {:>8.3} {:>10.3} {:>9}",
            o.family.name(),
            o.d,
            o.recall,
            o.precision,
            o.feasible
        );
    }
    let model = result.model;
    println!(
        "\nwinner: {} with d = {} (recall {:.3}, precision {:.3})",
        model
            .family()
            .expect("search picked a MinHash model")
            .name(),
        model.d(),
        model.metrics.recall,
        model.metrics.precision
    );

    // Persist and reload — the deployment path.
    let json = model.to_json().expect("serialise");
    std::fs::create_dir_all("bench_results").expect("mkdir");
    std::fs::write("bench_results/fpe_example.json", &json).expect("write");
    let reloaded = FpeModel::from_json(&json).expect("reload");
    let probe: Vec<f64> = (0..100).map(|i| (i as f64 * 0.31).sin() * 2.0).collect();
    assert_eq!(
        model.score_feature(&probe).expect("score"),
        reloaded.score_feature(&probe).expect("score")
    );
    println!("persisted to bench_results/fpe_example.json and verified reload.");
}
